//! End-to-end suite for the HTTP observability listener: boot the real
//! binary with `serve --tcp … --http …`, drive a session over the
//! protocol, and scrape `/healthz`, `/metrics`, `/stats` and `/trace` over
//! a plain TCP socket speaking hand-written HTTP/1.1 — exactly what `curl`
//! or a Prometheus scraper would send.

use pm_server::{Request, Response, ServerStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_pm-scenarios");

/// A running `serve --tcp --http` child plus both announced addresses.
struct HttpServer {
    child: Child,
    protocol_addr: String,
    http_addr: String,
}

impl HttpServer {
    /// Spawns the server and scans stderr for both listener announcements
    /// (`listening on ADDR` and `http listening on ADDR`).
    fn spawn() -> HttpServer {
        let mut child = Command::new(BIN)
            .args(["serve", "--tcp", "127.0.0.1:0", "--http", "127.0.0.1:0"])
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut protocol_addr = None;
        let mut http_addr = None;
        let mut line = String::new();
        while stderr.read_line(&mut line).expect("read stderr") > 0 {
            if let Some(at) = line.find("http listening on ") {
                http_addr = Some(line[at + "http listening on ".len()..].trim().to_string());
            } else if let Some(at) = line.find("listening on ") {
                protocol_addr = Some(line[at + "listening on ".len()..].trim().to_string());
            }
            if protocol_addr.is_some() && http_addr.is_some() {
                break;
            }
            line.clear();
        }
        HttpServer {
            child,
            protocol_addr: protocol_addr.expect("protocol listener announced"),
            http_addr: http_addr.expect("http listener announced"),
        }
    }

    /// Sends one protocol request and returns its final response.
    fn request(&self, request: &Request) -> Response {
        let mut stream = TcpStream::connect(&self.protocol_addr).expect("connect protocol");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        writeln!(stream, "{}", serde_json::to_string(request).unwrap()).expect("send");
        let mut line = String::new();
        loop {
            line.clear();
            assert!(reader.read_line(&mut line).expect("receive") > 0);
            let response: Response = serde_json::from_str(line.trim()).expect("response parses");
            if response.is_final() {
                return response;
            }
        }
    }

    /// Sends raw bytes to the HTTP listener and returns the full response
    /// (head + body) as text.
    fn http_raw(&self, request: &str) -> String {
        let mut stream = TcpStream::connect(&self.http_addr).expect("connect http");
        stream.write_all(request.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    /// A well-formed GET; returns `(status line, body)`.
    fn get(&self, path: &str) -> (String, String) {
        let raw = self.http_raw(&format!(
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n"
        ));
        let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    fn shutdown(mut self) {
        let bye = self.request(&Request::Shutdown);
        assert!(matches!(bye, Response::Bye));
        let status = self.child.wait().expect("server exits");
        assert!(status.success());
    }
}

#[test]
fn live_server_serves_every_route_and_rejects_garbage() {
    let server = HttpServer::spawn();

    let (status, body) = server.get("/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    // Drive one fault-injected self-stab session so the scrape surfaces
    // have real content: verb latencies, harvested phases, trace spans.
    let spec = r#"{"Submit":{"spec":{"name":"http-e2e","tags":[],"generator":{"Hexagon":{"radius":3}},"algorithm":"SelfStabMax","scheduler":{"SeededRandom":7},"options":{"assume_outer_boundary_known":false,"reconnect":true,"track_connectivity":false,"round_budget":null,"seed":7,"occupancy":"Dense"},"perturbations":[],"faults":{"seed":7,"reset":"None","processes":[{"kind":"Removals","start":1,"period":2,"until":5,"count":2}]}}}}"#;
    let submitted = server.request(&serde_json::from_str(spec).expect("spec parses"));
    let Response::Submitted { session, .. } = submitted else {
        panic!("expected Submitted, got {submitted:?}");
    };
    match server.request(&Request::Run { session }) {
        Response::Done { report, .. } => assert!(report.unique_leader()),
        other => panic!("expected Done, got {other:?}"),
    }

    // /metrics serves the exact exposition the Metrics verb returns —
    // compare series presence, not bytes (latency counters keep moving).
    let (status, scraped) = server.get("/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let verb_metrics = match server.request(&Request::Metrics) {
        Response::Metrics { prometheus, .. } => prometheus,
        other => panic!("expected Metrics, got {other:?}"),
    };
    for line in verb_metrics.lines().filter(|l| l.starts_with("# ")) {
        assert!(
            scraped.contains(line),
            "verb exposition header `{line}` missing from the HTTP scrape"
        );
    }
    assert!(scraped.contains("pm_server_verb_latency_us"));
    assert!(scraped.contains("pm_election_phase_rounds_total"));
    assert!(scraped.contains("pm_trace_dropped_events 0"));

    let (status, stats_json) = server.get("/stats");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats: ServerStats = serde_json::from_str(&stats_json).expect("stats JSON parses");
    assert_eq!(stats.sessions, 1);
    assert!(stats.sweeps > 0);

    // /trace drains live spans: the run verb and its session slices are in
    // there, and the document is structurally valid Chrome trace JSON.
    let (status, trace_json) = server.get("/trace");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let trace: serde_json::Value = serde_json::from_str(&trace_json).expect("trace JSON parses");
    let events = trace
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(serde_json::Value::Str(name)) => Some(name.clone()),
            _ => None,
        })
        .collect();
    assert!(names.iter().any(|n| n == "run"), "no `run` verb span");
    assert!(
        names.iter().any(|n| n.starts_with("session:")),
        "no session slice span"
    );
    assert!(
        names.iter().any(|n| n.starts_with("fault:")),
        "no fault-firing instant"
    );
    // A second drain starts empty (plus whatever the drain itself traced).
    let (_, drained_again) = server.get("/trace");
    let again: serde_json::Value =
        serde_json::from_str(&drained_again).expect("second drain parses");
    let remaining = again
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array")
        .len();
    assert!(
        remaining < events.len(),
        "drain did not clear the rings ({remaining} >= {})",
        events.len()
    );

    let (status, body) = server.get("/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("/metrics"), "404 lists the routes: {body}");

    let raw = server.http_raw("POST /metrics HTTP/1.1\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 405 "), "POST got: {raw}");

    let raw = server.http_raw("complete garbage\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 400 "), "garbage got: {raw}");

    server.shutdown();
}
