//! The checkpoint determinism matrix: for every algorithm × scheduler pair,
//! snapshot a session early, midway and one step/round before the end,
//! restore each snapshot onto a freshly started execution (round-tripping
//! the checkpoint through JSON, as the wire would), finish, and require the
//! final `RunReport` to be **byte-identical** to the uninterrupted run's.
//! Error outcomes must survive the same round trip (erosion's stall).

use pm_core::api::{ElectionError, Execution, RunReport};
use pm_core::batch::SchedulerSpec;
use pm_core::session::{no_hook, ExecutionCheckpoint, Goal, SessionScheduler};
use pm_scenarios::{AlgorithmSpec, GeneratorSpec, ScenarioSpec};

fn start(spec: &ScenarioSpec) -> Execution<'static> {
    spec.algorithm
        .instance()
        .start_owned(&spec.build_shape(), spec.scheduler.build(), &spec.options)
        .expect("valid configuration")
}

/// Runs the scenario to completion in a session and returns the outcome
/// plus the bookkeeping totals (steps, rounds).
fn complete(spec: &ScenarioSpec) -> (Result<RunReport, ElectionError>, u64, u64) {
    let mut scheduler: SessionScheduler = SessionScheduler::new(32);
    let id = scheduler.admit(start(spec), ());
    scheduler.set_goal(id, Goal::Complete);
    scheduler.drive(id, &no_hook);
    let view = scheduler.view(id).expect("session exists");
    let outcome = scheduler.outcome(id).expect("driven to outcome").clone();
    (outcome, view.steps, view.rounds)
}

/// Checkpoints a fresh run of `spec` after exactly `rounds` rounds (round
/// -driven algorithms) or exactly `steps` steps (closed-form ones).
fn checkpoint_at(spec: &ScenarioSpec, rounds: Option<u64>, steps: u64) -> ExecutionCheckpoint {
    match rounds {
        Some(target) => {
            let mut scheduler: SessionScheduler = SessionScheduler::new(16);
            let id = scheduler.admit(start(spec), ());
            scheduler.set_goal(id, Goal::Rounds(target));
            scheduler.drive(id, &no_hook);
            assert_eq!(scheduler.view(id).unwrap().rounds, target);
            scheduler.checkpoint(id).expect("session exists")
        }
        None => {
            // Closed-form algorithms never complete a discrete round, so
            // the cursor is steered by the slice budget instead: one sweep
            // of a slice-`steps` scheduler executes exactly `steps` steps.
            let mut scheduler: SessionScheduler = SessionScheduler::new(steps);
            let id = scheduler.admit(start(spec), ());
            scheduler.set_goal(id, Goal::Complete);
            scheduler.sweep(&no_hook);
            assert_eq!(scheduler.view(id).unwrap().steps, steps);
            scheduler.checkpoint(id).expect("session exists")
        }
    }
}

/// Restores the checkpoint (after a JSON round trip) onto a fresh execution
/// and finishes the session.
fn restore_and_finish(
    spec: &ScenarioSpec,
    checkpoint: &ExecutionCheckpoint,
) -> Result<RunReport, ElectionError> {
    let wire = serde_json::to_string(checkpoint).expect("checkpoint serializes");
    let checkpoint: ExecutionCheckpoint =
        serde_json::from_str(&wire).expect("checkpoint deserializes");
    let mut scheduler: SessionScheduler = SessionScheduler::new(32);
    let id = scheduler
        .restore(start(spec), (), &checkpoint, &no_hook)
        .expect("replay validates");
    scheduler.set_goal(id, Goal::Complete);
    scheduler.drive(id, &no_hook);
    scheduler.outcome(id).expect("driven to outcome").clone()
}

/// The `{1, mid, last-1}` cursor targets within `total`.
fn targets(total: u64) -> Vec<u64> {
    let mut picks = vec![1, total / 2, total.saturating_sub(1)];
    picks.retain(|&t| t >= 1 && t < total);
    picks.dedup();
    picks
}

#[test]
fn every_algorithm_and_scheduler_restores_byte_identically() {
    let algorithms = [
        AlgorithmSpec::Pipeline,
        AlgorithmSpec::Erosion,
        AlgorithmSpec::RandomizedBoundary,
        AlgorithmSpec::QuadraticBoundary,
    ];
    let schedulers = [SchedulerSpec::RoundRobin, SchedulerSpec::SeededRandom(5)];
    let mut matrix = 0;
    for algorithm in algorithms {
        for scheduler in schedulers {
            let spec = ScenarioSpec::new("matrix", GeneratorSpec::Hexagon { radius: 4 })
                .algorithm(algorithm)
                .scheduler(scheduler);
            let (reference, steps, rounds) = complete(&spec);
            let reference = reference.expect("hole-free hexagon elects");
            let reference_bytes = serde_json::to_string(&reference).expect("report serializes");

            // Round-driven algorithms pin round cursors; closed-form ones
            // (which never emit a discrete round) pin step cursors.
            let round_driven = rounds >= 3;
            let cursor_total = if round_driven { rounds } else { steps };
            for target in targets(cursor_total) {
                let checkpoint = if round_driven {
                    checkpoint_at(&spec, Some(target), 0)
                } else {
                    checkpoint_at(&spec, None, target)
                };
                assert_eq!(checkpoint.algorithm, spec.algorithm.name());
                let restored =
                    restore_and_finish(&spec, &checkpoint).expect("restored session elects");
                let restored_bytes = serde_json::to_string(&restored).expect("report serializes");
                assert_eq!(
                    restored_bytes,
                    reference_bytes,
                    "{} / {}: restore at cursor {target} diverged",
                    spec.algorithm.name(),
                    spec.scheduler.name()
                );
                matrix += 1;
            }
        }
    }
    assert!(matrix >= 4 * 2 * 2, "only {matrix} matrix cells exercised");
}

#[test]
fn error_outcomes_survive_checkpoint_restore() {
    // Erosion legitimately stalls on shapes with holes; a session restored
    // from a mid-run checkpoint must reproduce the identical error.
    let spec = ScenarioSpec::new("stall", GeneratorSpec::Annulus { outer: 4, inner: 1 })
        .algorithm(AlgorithmSpec::Erosion)
        .scheduler(SchedulerSpec::RoundRobin);
    let (reference, _, rounds) = complete(&spec);
    let reference = reference.expect_err("erosion stalls on the annulus");
    assert!(matches!(reference, ElectionError::Stuck { .. }));
    for target in targets(rounds) {
        let checkpoint = checkpoint_at(&spec, Some(target), 0);
        let restored =
            restore_and_finish(&spec, &checkpoint).expect_err("restored session stalls too");
        assert_eq!(restored, reference, "error diverged at round {target}");
    }
}

#[test]
fn finished_checkpoints_restore_without_extra_steps() {
    let spec = ScenarioSpec::new("done", GeneratorSpec::Hexagon { radius: 3 });
    let (reference, steps, _) = complete(&spec);
    let reference = reference.expect("hexagon elects");
    let mut scheduler: SessionScheduler = SessionScheduler::new(32);
    let id = scheduler.admit(start(&spec), ());
    scheduler.set_goal(id, Goal::Complete);
    scheduler.drive(id, &no_hook);
    let checkpoint = scheduler.checkpoint(id).expect("session exists");
    assert!(checkpoint.finished);
    assert_eq!(checkpoint.steps, steps);
    let restored = restore_and_finish(&spec, &checkpoint).expect("restores finished");
    assert_eq!(restored, reference);
}
