//! End-to-end suite over the real binary: the committed smoke script drives
//! a scripted session — submit, watch, mid-flight perturbation, run,
//! checkpoint, **fresh-process** restore, run again — and the transcript
//! must match the committed golden byte for byte, at every scheduler thread
//! count. A second test exercises the TCP transport against a live socket.

use pm_server::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_pm-scenarios");

fn manifest(relative: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(relative)
        .display()
        .to_string()
}

fn client_transcript(threads: usize) -> String {
    let output = Command::new(BIN)
        .args([
            "client",
            "--script",
            &manifest("scripts/server_smoke.jsonl"),
            "--threads",
            &threads.to_string(),
        ])
        .output()
        .expect("client runs");
    assert!(
        output.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("transcript is UTF-8")
}

fn responses(transcript: &str) -> Vec<Response> {
    transcript
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .map(|line| serde_json::from_str(line).expect("transcript line parses"))
        .collect()
}

#[test]
fn smoke_script_matches_golden_across_thread_counts() {
    let golden = std::fs::read_to_string(manifest("golden/server_smoke.jsonl"))
        .expect("committed golden transcript");
    for threads in [1, 2, 8] {
        let transcript = client_transcript(threads);
        assert_eq!(
            transcript, golden,
            "transcript diverged from golden at --threads {threads} \
             (regenerate: pm-scenarios client --script scripts/server_smoke.jsonl \
             > golden/server_smoke.jsonl)"
        );
    }
}

#[test]
fn smoke_transcript_proves_the_full_lifecycle() {
    let parsed = responses(&client_transcript(2));

    let rounds = parsed
        .iter()
        .filter(|r| matches!(r, Response::Round { .. }))
        .count();
    assert!(rounds >= 3, "watch streamed only {rounds} round lines");

    assert!(parsed
        .iter()
        .any(|r| matches!(r, Response::Perturbed { events: 1, .. })));

    // Restore replayed the checkpoint's exact cursor in a fresh process.
    assert!(parsed.iter().any(
        |r| matches!(r, Response::Restored { steps, rounds, .. } if *steps > 0 && *rounds > 0)
    ));

    // The mid-flight fault injection on the self-stab session was accepted.
    assert!(parsed
        .iter()
        .any(|r| matches!(r, Response::Faulted { processes: 2, .. })));

    // Three final reports — live run, fault-injected self-stab run, and the
    // restored-after-restart run. Live and restored must be byte-identical,
    // with a unique leader and the perturbation's removals reflected in the
    // survivors.
    let reports: Vec<_> = parsed
        .iter()
        .filter_map(|r| match r {
            Response::Done { report, .. } => Some(report),
            _ => None,
        })
        .collect();
    assert_eq!(
        reports.len(),
        3,
        "expected a live, a faulted and a restored report"
    );
    assert_eq!(
        serde_json::to_string(reports[0]).unwrap(),
        serde_json::to_string(reports[2]).unwrap(),
        "restored run diverged from the live run"
    );
    assert!(reports[0].unique_leader());
    assert_eq!(reports[0].undecided, 0);
    assert!(
        reports[0].final_positions.len() < reports[0].n,
        "the RemoveRandom perturbation removed no particles"
    );
    // The fault-injected session recovered a unique leader with no reset —
    // periodic removals plus injected corruption, absorbed in-stride.
    assert_eq!(reports[1].algorithm, "self-stab-max");
    assert!(reports[1].unique_leader());
    assert_eq!(reports[1].undecided, 0);
    assert!(
        reports[1].final_positions.len() < reports[1].n,
        "the periodic removal process removed no particles"
    );
    assert!(matches!(parsed.last(), Some(Response::Bye)));
}

#[test]
fn tcp_transport_serves_the_same_protocol() {
    let mut server = Command::new(BIN)
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The server announces its ephemeral port on stderr (as a log line, so
    // scan lines for the substring rather than assuming it comes first).
    let mut stderr = BufReader::new(server.stderr.take().expect("stderr piped"));
    let mut addr = None;
    let mut announcement = String::new();
    while stderr.read_line(&mut announcement).expect("announcement") > 0 {
        if let Some(at) = announcement.find("listening on ") {
            addr = Some(
                announcement[at + "listening on ".len()..]
                    .trim()
                    .to_string(),
            );
            break;
        }
        announcement.clear();
    }
    let addr = addr.expect("server announced its address");

    let spec = r#"{"Submit":{"spec":{"name":"tcp","tags":[],"generator":{"Hexagon":{"radius":3}},"algorithm":"Pipeline","scheduler":{"SeededRandom":7},"options":{"assume_outer_boundary_known":false,"reconnect":true,"track_connectivity":false,"round_budget":null,"seed":7,"occupancy":"Dense"},"perturbations":[],"faults":{"seed":0,"reset":"None","processes":[]}}}}"#;

    // First connection: submit, then drop the connection mid-session.
    let mut first = TcpStream::connect(&addr).expect("connect");
    writeln!(first, "{spec}").unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        matches!(
            serde_json::from_str(line.trim()).unwrap(),
            Response::Submitted { session: 1, .. }
        ),
        "unexpected response {line}"
    );
    drop(reader);
    drop(first);

    // Second connection: the session survived the disconnect; finish it
    // and shut the server down.
    let mut second = TcpStream::connect(&addr).expect("reconnect");
    let mut reader = BufReader::new(second.try_clone().unwrap());
    writeln!(
        second,
        "{}",
        serde_json::to_string(&Request::Run { session: 1 }).unwrap()
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match serde_json::from_str(line.trim()).unwrap() {
        Response::Done { session: 1, report } => assert!(report.unique_leader()),
        other => panic!("expected Done, got {other:?}"),
    }
    writeln!(
        second,
        "{}",
        serde_json::to_string(&Request::Shutdown).unwrap()
    )
    .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        serde_json::from_str(line.trim()).unwrap(),
        Response::Bye
    ));
    let status = server.wait().expect("server exits");
    assert!(status.success());
}
