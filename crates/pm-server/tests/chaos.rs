//! Chaos suite over the real binary: SIGKILL between autosaves, torn
//! checkpoint files, connections dropped mid-line, and a 32-client
//! concurrency storm. The contract under every fault: an accepted session
//! either completes byte-identically after restart or is reported lost
//! with a typed error — never silently corrupted.

use pm_scenarios::{GeneratorSpec, ScenarioSpec};
use pm_server::{Request, Response};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_pm-scenarios");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The three scenarios every crash test submits: distinct shapes so a
/// mixed-up restore could not accidentally produce matching reports.
fn chaos_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new("chaos-hex", GeneratorSpec::Hexagon { radius: 3 }),
        ScenarioSpec::new("chaos-ring", GeneratorSpec::Annulus { outer: 4, inner: 2 }),
        ScenarioSpec::new("chaos-small", GeneratorSpec::Hexagon { radius: 2 }),
    ]
}

/// A `serve --stdio` child driven over its pipes.
struct StdioServer {
    child: Child,
    input: ChildStdin,
    output: BufReader<ChildStdout>,
}

impl StdioServer {
    fn spawn(extra: &[&str]) -> StdioServer {
        let mut child = Command::new(BIN)
            .args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let input = child.stdin.take().expect("stdin piped");
        let output = BufReader::new(child.stdout.take().expect("stdout piped"));
        StdioServer {
            child,
            input,
            output,
        }
    }

    /// Sends one request and reads to its final response.
    fn request(&mut self, request: &Request) -> Response {
        let line = serde_json::to_string(request).expect("request serializes");
        writeln!(self.input, "{line}").expect("write to server");
        self.input.flush().expect("flush to server");
        loop {
            let mut raw = String::new();
            assert_ne!(
                self.output.read_line(&mut raw).expect("read from server"),
                0,
                "server closed stdout mid-request"
            );
            let response: Response = serde_json::from_str(raw.trim()).expect("response parses");
            if response.is_final() {
                return response;
            }
        }
    }

    fn submit(&mut self, spec: &ScenarioSpec) -> u64 {
        match self.request(&Request::Submit { spec: spec.clone() }) {
            Response::Submitted { session, .. } => session,
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    fn run_report(&mut self, session: u64) -> String {
        match self.request(&Request::Run { session }) {
            Response::Done { report, .. } => serde_json::to_string(&report).unwrap(),
            other => panic!("expected Done for session {session}, got {other:?}"),
        }
    }

    /// The SIGKILL: no shutdown verb, no flush, no final autosave.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL the server");
        self.child.wait().expect("reap the server");
    }

    fn shutdown(mut self) {
        assert!(matches!(self.request(&Request::Shutdown), Response::Bye));
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exited with {status}");
    }
}

/// Reports from an uninterrupted submit-and-run of every spec, keyed by
/// scenario name — the byte-identical reference every crash run must hit.
fn golden_reports(threads: usize, specs: &[ScenarioSpec]) -> BTreeMap<String, String> {
    let mut server = StdioServer::spawn(&["--threads", &threads.to_string()]);
    let sessions: Vec<u64> = specs.iter().map(|spec| server.submit(spec)).collect();
    let reports = specs
        .iter()
        .zip(&sessions)
        .map(|(spec, &session)| (spec.name.clone(), server.run_report(session)))
        .collect();
    server.shutdown();
    reports
}

fn wait_for_files(dir: &PathBuf, count: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let saved = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        let name = e.file_name();
                        let name = name.to_string_lossy().into_owned();
                        name.starts_with("session-") && name.ends_with(".json")
                    })
                    .count()
            })
            .unwrap_or(0);
        if saved >= count {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "autosave produced {saved}/{count} checkpoint files within 20s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The headline crash drill, at every scheduler thread count: submit and
/// partially advance sessions, SIGKILL the server between autosaves,
/// restart it on the same persist dir, and every session must come back
/// and finish with a report byte-identical to an uninterrupted run.
#[test]
fn sigkill_between_autosaves_restores_every_session_byte_identically() {
    let specs = chaos_specs();
    for threads in [1usize, 2, 8] {
        let golden = golden_reports(threads, &specs);

        let dir = temp_dir(&format!("sigkill-{threads}"));
        let threads_arg = threads.to_string();
        let dir_arg = dir.display().to_string();
        let flags = [
            "--threads",
            threads_arg.as_str(),
            "--persist-dir",
            dir_arg.as_str(),
            "--autosave-ms",
            "25",
        ];

        let mut server = StdioServer::spawn(&flags);
        let sessions: Vec<u64> = specs.iter().map(|spec| server.submit(spec)).collect();
        for &session in &sessions {
            match server.request(&Request::Watch { session, rounds: 2 }) {
                Response::Status { .. } | Response::Done { .. } => {}
                other => panic!("expected Status after watch, got {other:?}"),
            }
        }
        wait_for_files(&dir, specs.len());
        server.kill();

        let mut revived = StdioServer::spawn(&flags);
        let rows = match revived.request(&Request::Sessions) {
            Response::Sessions { sessions } => sessions,
            other => panic!("expected Sessions, got {other:?}"),
        };
        assert_eq!(
            rows.len(),
            specs.len(),
            "--threads {threads}: recovery lost sessions"
        );
        for row in rows {
            let report = revived.run_report(row.session);
            assert_eq!(
                Some(&report),
                golden.get(&row.name),
                "--threads {threads}: `{}` diverged after SIGKILL + recovery",
                row.name
            );
        }
        revived.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Torn, truncated, and garbage checkpoint files are rejected with a
/// logged typed error at startup — the server recovers what it can and
/// keeps serving, it never panics and never invents a corrupt session.
#[test]
fn torn_checkpoint_files_are_rejected_and_the_server_keeps_serving() {
    let dir = temp_dir("torn");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("session-1.json"), b"{\"spec\":{\"name\":\"half").unwrap();
    std::fs::write(dir.join("session-2.json"), b"not json at all\n").unwrap();

    let dir_arg = dir.display().to_string();
    let mut child = Command::new(BIN)
        .args(["serve", "--stdio", "--persist-dir", &dir_arg])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let input = child.stdin.take().expect("stdin piped");
    let output = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut server = StdioServer {
        child,
        input,
        output,
    };

    // Both corrupt files were skipped; the server is empty and healthy.
    match server.request(&Request::Sessions) {
        Response::Sessions { sessions } => assert!(sessions.is_empty()),
        other => panic!("expected Sessions, got {other:?}"),
    }
    let spec = ScenarioSpec::new("after-torn", GeneratorSpec::Hexagon { radius: 2 });
    let session = server.submit(&spec);
    server.run_report(session);

    let mut stderr = server.child.stderr.take().expect("stderr piped");
    server.shutdown();
    let mut log = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut log).expect("stderr is UTF-8");
    assert!(
        log.contains("malformed checkpoint file"),
        "expected typed rejections in the log, got:\n{log}"
    );
    assert!(
        log.contains("recovered 0 session(s)") && log.contains("2 rejected"),
        "expected a recovery summary, got:\n{log}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns a TCP server, returns its child, address, and the stderr
/// drain thread (the pipe must keep draining or connection-error logs
/// would eventually block the server).
fn spawn_tcp(extra: &[&str]) -> (Child, String, std::thread::JoinHandle<()>) {
    let mut child = Command::new(BIN)
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut addr = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).expect("read stderr") > 0 {
        // The announcement is a log line now: match the substring.
        if let Some(at) = line.find("listening on ") {
            addr = Some(line[at + "listening on ".len()..].trim().to_string());
            break;
        }
        line.clear();
    }
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut stderr, &mut rest);
    });
    (child, addr.expect("server announced its address"), drain)
}

fn tcp_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Response {
    let line = serde_json::to_string(request).unwrap();
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    loop {
        let mut raw = String::new();
        assert_ne!(
            reader.read_line(&mut raw).expect("receive"),
            0,
            "server hung up"
        );
        let response: Response = serde_json::from_str(raw.trim()).expect("response parses");
        if response.is_final() {
            return response;
        }
    }
}

/// Clients that die mid-line (half a request, no newline, then a dropped
/// socket) must not take the server or anyone else's session with them.
#[test]
fn connections_killed_mid_line_leave_the_server_serving() {
    let (mut child, addr, drain) = spawn_tcp(&["--threads", "2"]);

    for _ in 0..3 {
        let mut victim = TcpStream::connect(&addr).expect("connect");
        victim
            .write_all(b"{\"Submit\":{\"spec\":{\"name\":\"never")
            .expect("half a line");
        victim.flush().ok();
        drop(victim); // hang up mid-line, newline never sent
    }

    let mut clean = TcpStream::connect(&addr).expect("connect after carnage");
    let mut reader = BufReader::new(clean.try_clone().unwrap());
    let spec = ScenarioSpec::new("survivor", GeneratorSpec::Hexagon { radius: 2 });
    let session = match tcp_request(&mut clean, &mut reader, &Request::Submit { spec }) {
        Response::Submitted { session, .. } => session,
        other => panic!("expected Submitted, got {other:?}"),
    };
    match tcp_request(&mut clean, &mut reader, &Request::Run { session }) {
        Response::Done { report, .. } => assert!(report.unique_leader()),
        other => panic!("expected Done, got {other:?}"),
    }
    assert!(matches!(
        tcp_request(&mut clean, &mut reader, &Request::Shutdown),
        Response::Bye
    ));
    assert!(child.wait().expect("server exits").success());
    drain.join().unwrap();
}

/// 32 simultaneous TCP clients hammer one server whose session budget is
/// deliberately far smaller than the client count, so the retryable
/// `Busy` rejection is exercised for real — every client still completes
/// every one of its sessions with a unique leader.
#[test]
fn thirty_two_concurrent_clients_share_one_server() {
    const CLIENTS: usize = 32;
    const SESSIONS_EACH: usize = 2;
    let (mut child, addr, drain) = spawn_tcp(&["--threads", "4", "--max-sessions", "8"]);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let addr = &addr;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for index in 0..SESSIONS_EACH {
                    let spec = ScenarioSpec::new(
                        format!("storm-{client}-{index}"),
                        GeneratorSpec::Hexagon { radius: 2 },
                    );
                    let request = Request::Submit { spec };
                    let session = loop {
                        match tcp_request(&mut stream, &mut reader, &request) {
                            Response::Submitted { session, .. } => break session,
                            Response::Busy { .. } => std::thread::sleep(Duration::from_millis(2)),
                            other => panic!("client {client}: expected Submitted, got {other:?}"),
                        }
                    };
                    match tcp_request(&mut stream, &mut reader, &Request::Run { session }) {
                        Response::Done { report, .. } => assert!(report.unique_leader()),
                        other => panic!("client {client}: expected Done, got {other:?}"),
                    }
                    assert!(matches!(
                        tcp_request(&mut stream, &mut reader, &Request::Cancel { session }),
                        Response::Cancelled { .. }
                    ));
                }
            });
        }
    });

    let mut control = TcpStream::connect(&addr).expect("connect control");
    let mut reader = BufReader::new(control.try_clone().unwrap());
    match tcp_request(&mut control, &mut reader, &Request::Stats) {
        Response::Stats { stats } => {
            assert_eq!(stats.sessions, 0, "every storm session was cancelled");
            assert!(stats.sweeps > 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    assert!(matches!(
        tcp_request(&mut control, &mut reader, &Request::Shutdown),
        Response::Bye
    ));
    assert!(child.wait().expect("server exits").success());
    drain.join().unwrap();
}
