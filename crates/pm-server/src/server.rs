//! The transport-agnostic server core: protocol requests in, protocol
//! responses out, with every live session multiplexed through one
//! [`SessionScheduler`].
//!
//! The core is deliberately synchronous and single-threaded at the protocol
//! layer (requests are served in arrival order); concurrency lives below it,
//! in the scheduler's sharded sweeps, and *fairness* is the scheduler's
//! round-robin slice budget — a `watch` or `run` request pumps the whole
//! scheduler, so every runnable session advances while one client's request
//! is being served, and no session can starve the rest.

use crate::persist::PersistDir;
use crate::protocol::{Request, Response, ServerStats, SessionCheckpoint, SessionSummary};
use crate::telemetry::{as_micros, ServerTelemetry};
use pm_core::api::Execution;
use pm_core::session::{Goal, SessionId, SessionScheduler};
use pm_faults::FaultProcess;
use pm_scenarios::{PerturbationSpec, ScenarioScript, ScenarioSpec};
use pm_telemetry::{trace, warn};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The log target every core-side line is tagged with.
const LOG: &str = "pm_server::core";

/// The per-step hook every session runs under: fire the session's due
/// perturbation events and fault processes against the live system before
/// the next round. Live stepping and checkpoint replay share this hook,
/// which is what makes restored sessions reproduce adversarial runs
/// exactly.
fn apply_scripts(script: &mut ScenarioScript, execution: &mut Execution<'static>) {
    script.apply_due(execution);
}

/// Resource bounds a server core enforces. The defaults bound nothing —
/// existing embedded uses keep their unlimited behavior unless they opt in.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerLimits {
    /// Reject `submit`/`restore` with the retryable [`Response::Busy`] once
    /// this many sessions are live. Sessions are the server's only
    /// per-client state, so this is also the memory budget.
    pub max_sessions: Option<usize>,
    /// Evict sessions idle (no request touched them) for at least this
    /// long during [`ServerCore::housekeeping`] sweeps.
    pub idle_ttl: Option<Duration>,
}

/// The multi-tenant session server behind every transport. See the
/// [module docs](self) for the scheduling model and `PROTOCOL.md` for the
/// wire protocol.
pub struct ServerCore {
    scheduler: SessionScheduler<ScenarioScript>,
    /// Each session's scenario, kept current with injected perturbations —
    /// this is what a checkpoint persists, so a fresh process can rebuild
    /// the session from nothing but the checkpoint.
    specs: BTreeMap<SessionId, ScenarioSpec>,
    /// When each session was last named by a request (idle-TTL eviction).
    touched: BTreeMap<SessionId, Instant>,
    /// The autosave cursor last written per session — sessions that have
    /// not advanced since are skipped, so an idle server writes nothing.
    saved: BTreeMap<SessionId, (u64, u64, usize)>,
    persist: Option<PersistDir>,
    limits: ServerLimits,
    /// How often transports should call [`ServerCore::housekeeping`].
    autosave_interval: Duration,
    started: Instant,
    sweeps: u64,
    checkpoints_written: u64,
    evictions: u64,
    restores: u64,
    /// The shared metric registry and its hot-path handles; transports
    /// clone the `Arc` and record without taking the core lock.
    telemetry: Arc<ServerTelemetry>,
    /// Sessions whose finished profile was already folded into the
    /// registry (profiles must count exactly once per election).
    harvested: BTreeSet<SessionId>,
}

impl ServerCore {
    /// A server core giving each runnable session at most `slice_steps`
    /// steps per scheduler sweep, sweeping on up to `threads` threads.
    pub fn new(slice_steps: u64, threads: usize) -> ServerCore {
        ServerCore {
            scheduler: SessionScheduler::with_threads(slice_steps, threads),
            specs: BTreeMap::new(),
            touched: BTreeMap::new(),
            saved: BTreeMap::new(),
            persist: None,
            limits: ServerLimits::default(),
            autosave_interval: Duration::from_millis(500),
            started: Instant::now(),
            sweeps: 0,
            checkpoints_written: 0,
            evictions: 0,
            restores: 0,
            telemetry: ServerTelemetry::new(),
            harvested: BTreeSet::new(),
        }
    }

    /// The core's telemetry bundle — transports clone it to record
    /// connection and byte counters off the core lock, and embedders can
    /// scrape it directly.
    pub fn telemetry(&self) -> Arc<ServerTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Rebases the core's uptime clock onto an external epoch — the
    /// `--http` path installs the trace recorder and the core on one shared
    /// `Instant`, so `/stats` uptime, `/metrics` scrape ages and trace
    /// timestamps all count from the same origin.
    pub fn set_epoch(&mut self, epoch: Instant) {
        self.started = epoch;
    }

    /// Number of live sessions.
    pub fn sessions(&self) -> usize {
        self.scheduler.len()
    }

    /// Installs resource bounds (session budget, idle TTL).
    pub fn set_limits(&mut self, limits: ServerLimits) {
        self.limits = limits;
    }

    /// Sets how often transports run [`ServerCore::housekeeping`].
    pub fn set_autosave_interval(&mut self, interval: Duration) {
        self.autosave_interval = interval.max(Duration::from_millis(1));
    }

    /// The housekeeping cadence transports should honor.
    pub fn autosave_interval(&self) -> Duration {
        self.autosave_interval
    }

    /// Whether this core wants a periodic housekeeping tick at all (it does
    /// once persistence or an idle TTL is configured).
    pub fn wants_housekeeping(&self) -> bool {
        self.persist.is_some() || self.limits.idle_ttl.is_some()
    }

    /// Attaches a persist directory and recovers every session checkpointed
    /// in it, in ascending saved-id order (restored sessions get fresh ids,
    /// preserving the original order). Corrupt or torn files are logged to
    /// stderr with their typed error and skipped — recovery never panics
    /// and never aborts the scan. Returns `(restored, rejected)` counts.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created or listed.
    pub fn attach_persistence(
        &mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(usize, usize), String> {
        let persist = PersistDir::open(dir).map_err(|e| e.to_string())?;
        let scanned = persist.scan().map_err(|e| e.to_string())?;
        let mut restored = 0;
        let mut rejected = 0;
        for (path, parsed) in scanned {
            let checkpoint = match parsed {
                Ok(checkpoint) => checkpoint,
                Err(error) => {
                    warn!(LOG, "recovery: skipping {error}");
                    rejected += 1;
                    continue;
                }
            };
            let name = checkpoint.spec.name.clone();
            match self.restore(checkpoint) {
                Response::Restored { session, .. } => {
                    // The session lives under a fresh id now; the stale file
                    // must not resurrect a duplicate on the next restart.
                    let _ = std::fs::remove_file(&path);
                    if let Some(checkpoint) = self.session_checkpoint(session) {
                        if persist.save(session, &checkpoint).is_ok() {
                            self.mark_saved(session);
                        }
                    }
                    restored += 1;
                }
                response => {
                    warn!(
                        LOG,
                        "recovery: skipping {} (`{name}`): {response:?}",
                        path.display()
                    );
                    rejected += 1;
                }
            }
        }
        self.persist = Some(persist);
        Ok((restored, rejected))
    }

    /// Serves one request, appending every response line to `out` (exactly
    /// one final response, preceded by any number of [`Response::Round`]
    /// stream lines). Returns `true` iff the request was [`Request::Shutdown`]
    /// and the transport should stop reading.
    pub fn handle(&mut self, request: Request, out: &mut Vec<Response>) -> bool {
        let verb = ServerCore::verb_name(&request);
        let _span = trace::span("verb", verb);
        let served = Instant::now();
        if let Some(session) = ServerCore::named_session(&request) {
            self.touch(session);
        }
        let shutdown = match request {
            Request::Submit { spec } => {
                out.push(self.submit(spec));
                false
            }
            Request::Status { session } => {
                out.push(self.status(session));
                false
            }
            Request::Watch { session, rounds } => {
                self.watch(session, rounds, out);
                false
            }
            Request::Run { session } => {
                self.run(session, out);
                false
            }
            Request::Perturb { session, event } => {
                out.push(self.perturb(session, event));
                false
            }
            Request::Fault { session, process } => {
                out.push(self.fault(session, process));
                false
            }
            Request::Pause { session } => {
                out.push(self.pause(session));
                false
            }
            Request::Resume { session } => {
                out.push(self.resume(session));
                false
            }
            Request::Cancel { session } => {
                out.push(self.cancel(session));
                false
            }
            Request::Checkpoint { session } => {
                out.push(self.checkpoint(session));
                false
            }
            Request::Restore { checkpoint } => {
                out.push(self.restore(checkpoint));
                false
            }
            Request::Sessions => {
                out.push(self.list());
                false
            }
            Request::Stats => {
                out.push(self.stats());
                false
            }
            Request::Metrics => {
                out.push(self.metrics());
                false
            }
            Request::Shutdown => {
                out.push(Response::Bye);
                true
            }
        };
        self.telemetry.observe_verb(verb, served.elapsed());
        shutdown
    }

    /// The metric label each verb's latency is recorded under.
    fn verb_name(request: &Request) -> &'static str {
        match request {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Watch { .. } => "watch",
            Request::Run { .. } => "run",
            Request::Perturb { .. } => "perturb",
            Request::Fault { .. } => "fault",
            Request::Pause { .. } => "pause",
            Request::Resume { .. } => "resume",
            Request::Cancel { .. } => "cancel",
            Request::Checkpoint { .. } => "checkpoint",
            Request::Restore { .. } => "restore",
            Request::Sessions => "sessions",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// The session a request names, if any — every such request counts as
    /// client interest for the idle-TTL clock.
    fn named_session(request: &Request) -> Option<SessionId> {
        match request {
            Request::Status { session }
            | Request::Watch { session, .. }
            | Request::Run { session }
            | Request::Perturb { session, .. }
            | Request::Fault { session, .. }
            | Request::Pause { session }
            | Request::Resume { session }
            | Request::Cancel { session }
            | Request::Checkpoint { session } => Some(*session),
            Request::Submit { .. }
            | Request::Restore { .. }
            | Request::Sessions
            | Request::Stats
            | Request::Metrics
            | Request::Shutdown => None,
        }
    }

    fn touch(&mut self, session: SessionId) {
        if self.scheduler.view(session).is_some() {
            self.touched.insert(session, Instant::now());
        }
    }

    /// Pumps the scheduler until `session` reaches its goal, counting the
    /// sweeps for the `stats` verb and timing each one for the registry.
    /// Sessions that finish during the pumping — the named one or any
    /// other runnable session — get their profiles harvested.
    fn drive(&mut self, session: SessionId) {
        while self.scheduler.runnable(session) {
            let swept = Instant::now();
            self.scheduler.sweep(&apply_scripts);
            self.telemetry
                .sweep_duration_us
                .observe(as_micros(swept.elapsed()));
            self.sweeps += 1;
        }
        self.harvest_finished();
    }

    /// Folds every newly finished session's per-phase profile — and, for
    /// fault-injected sessions, its recovery outcome — into the registry,
    /// exactly once per session.
    fn harvest_finished(&mut self) {
        for id in self.scheduler.ids() {
            if self.harvested.contains(&id) {
                continue;
            }
            let (total_rounds, recovered) = match self.scheduler.outcome(id) {
                Some(Ok(report)) => {
                    self.telemetry.harvest_profile(&report.profile);
                    (report.total_rounds, report.unique_leader())
                }
                _ => continue,
            };
            if let Some(script) = self.scheduler.payload_mut(id) {
                let faults = script.faults();
                if faults.fired() > 0 {
                    let recovery_rounds =
                        total_rounds.saturating_sub(faults.rounds_at_last_fault());
                    self.telemetry
                        .harvest_recovery(faults.fired(), recovery_rounds, recovered);
                }
            }
            self.harvested.insert(id);
        }
    }

    /// The retryable rejection when the session budget is exhausted, or
    /// `None` while there is room.
    fn at_budget(&self) -> Option<Response> {
        let max = self.limits.max_sessions?;
        (self.scheduler.len() >= max).then(|| Response::Busy {
            message: format!(
                "session budget {max} exhausted; retry after sessions complete, \
                 are cancelled, or expire"
            ),
        })
    }

    /// One housekeeping sweep: evict idle sessions past their TTL, then
    /// autosave every session that advanced since its last save (capturing
    /// a fresh baseline first, so restore replay stays bounded by the
    /// autosave interval instead of session age). Transports call this on
    /// the [`ServerCore::autosave_interval`] cadence and once more right
    /// before exiting. Returns `(evicted, files_written)`.
    pub fn housekeeping(&mut self) -> (usize, usize) {
        let _pass_span = trace::span("server", "housekeeping");
        let now = Instant::now();
        let pass = Instant::now();
        let mut evicted = 0;
        if let Some(ttl) = self.limits.idle_ttl {
            for id in self.scheduler.ids() {
                let fresh = self
                    .touched
                    .get(&id)
                    .is_some_and(|at| now.duration_since(*at) < ttl);
                if !fresh {
                    self.forget(id);
                    self.evictions += 1;
                    evicted += 1;
                    if trace::enabled() {
                        trace::instant("server", format!("evict:session-{id}"));
                    }
                }
            }
        }
        let mut written = 0;
        if self.persist.is_none() {
            self.telemetry
                .housekeeping_duration_us
                .observe(as_micros(pass.elapsed()));
            return (evicted, written);
        }
        for id in self.scheduler.ids() {
            let cursor = self.cursor(id);
            if self.saved.get(&id) == Some(&cursor) {
                continue;
            }
            // Bound future replay cost before snapshotting: the saved
            // checkpoint carries a baseline at the current cursor.
            self.scheduler.rebaseline(id);
            let Some(checkpoint) = self.session_checkpoint(id) else {
                continue;
            };
            let saved_at = Instant::now();
            match self.persist.as_ref().map(|p| p.save(id, &checkpoint)) {
                Some(Ok(bytes)) => {
                    self.telemetry
                        .checkpoint_write_us
                        .observe(as_micros(saved_at.elapsed()));
                    self.telemetry.checkpoint_bytes.observe(bytes);
                    self.saved.insert(id, cursor);
                    self.checkpoints_written += 1;
                    written += 1;
                    if trace::enabled() {
                        trace::instant("server", format!("checkpoint:session-{id}"));
                    }
                }
                Some(Err(error)) => {
                    self.telemetry.checkpoint_errors.inc();
                    warn!(LOG, "autosave: {error}");
                }
                None => {}
            }
        }
        self.telemetry
            .housekeeping_duration_us
            .observe(as_micros(pass.elapsed()));
        (evicted, written)
    }

    /// Drops every trace of a session: scheduler slot, spec, TTL clock,
    /// autosave cursor, and checkpoint file.
    fn forget(&mut self, session: SessionId) {
        self.scheduler.remove(session);
        self.specs.remove(&session);
        self.touched.remove(&session);
        self.saved.remove(&session);
        self.harvested.remove(&session);
        if let Some(persist) = &self.persist {
            persist.delete(session);
        }
    }

    /// The autosave-staleness cursor: a session whose cursor is unchanged
    /// since its last save has an up-to-date file on disk.
    fn cursor(&self, session: SessionId) -> (u64, u64, usize) {
        let view = self.scheduler.view(session).expect("live session");
        let events = self.specs.get(&session).map_or(0, |spec| {
            spec.perturbations.len() + spec.faults.processes.len()
        });
        (view.steps, view.rounds, events)
    }

    fn mark_saved(&mut self, session: SessionId) {
        let cursor = self.cursor(session);
        self.saved.insert(session, cursor);
        self.checkpoints_written += 1;
    }

    /// The full restorable snapshot of one session (spec + execution
    /// checkpoint), shared by the `checkpoint` verb and autosave.
    fn session_checkpoint(&self, session: SessionId) -> Option<SessionCheckpoint> {
        match (self.scheduler.checkpoint(session), self.specs.get(&session)) {
            (Some(execution), Some(spec)) => Some(SessionCheckpoint {
                spec: spec.clone(),
                execution,
            }),
            _ => None,
        }
    }

    /// The live operational snapshot behind the `stats` verb and the HTTP
    /// `/stats` route — both surfaces serve exactly this struct, so they
    /// can never drift apart.
    pub fn server_stats(&self) -> ServerStats {
        let mut running = 0;
        let mut paused = 0;
        let mut done = 0;
        for id in self.scheduler.ids() {
            let view = self.scheduler.view(id).expect("listed id exists");
            if view.done {
                done += 1;
            } else if view.paused {
                paused += 1;
            } else {
                running += 1;
            }
        }
        ServerStats {
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            sessions: self.scheduler.len(),
            running,
            paused,
            done,
            sweeps: self.sweeps,
            checkpoints_written: self.checkpoints_written,
            evictions: self.evictions,
            restores: self.restores,
            bytes_read: self.telemetry.bytes_read.get(),
            bytes_written: self.telemetry.bytes_written.get(),
            active_connections: self.telemetry.active_connections.get(),
        }
    }

    fn stats(&self) -> Response {
        Response::Stats {
            stats: self.server_stats(),
        }
    }

    /// One registry snapshot — the shared path behind the `metrics` verb
    /// and the HTTP `/metrics` route, so both scrape surfaces expose the
    /// identical series set. Harvests any sessions that finished since the
    /// last pumping request first (a scrape never misses a completed
    /// election's phase profile) and mirrors the trace recorder's ring-drop
    /// counter into the registry.
    pub fn metrics_snapshot(&mut self) -> pm_telemetry::MetricsSnapshot {
        self.harvest_finished();
        let dropped = i64::try_from(trace::dropped()).unwrap_or(i64::MAX);
        self.telemetry.trace_dropped_events.set(dropped);
        self.telemetry.snapshot()
    }

    fn metrics(&mut self) -> Response {
        let metrics = self.metrics_snapshot();
        let prometheus = metrics.to_prometheus();
        Response::Metrics {
            metrics,
            prometheus,
        }
    }

    fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
        }
    }

    fn unknown(session: SessionId) -> Response {
        ServerCore::error(format!("no session {session}"))
    }

    /// Starts an owned execution for a scenario — the shared path behind
    /// `submit` and `restore`.
    fn start(spec: &ScenarioSpec) -> Result<Execution<'static>, String> {
        if spec.is_adversarial() && !spec.algorithm.supports_perturbations() {
            let what = if spec.perturbations.is_empty() {
                "fault plan"
            } else {
                "perturbation script"
            };
            return Err(format!(
                "scenario `{}` attaches a {what} to `{}`, which runs no \
                 round-driven phase",
                spec.name,
                spec.algorithm.name()
            ));
        }
        let shape = spec.build_shape();
        spec.algorithm
            .instance()
            .start_owned(&shape, spec.scheduler.build(), &spec.options)
            .map_err(|e| format!("start `{}`: {e}", spec.name))
    }

    fn submit(&mut self, spec: ScenarioSpec) -> Response {
        if let Some(busy) = self.at_budget() {
            return busy;
        }
        let mut execution = match ServerCore::start(&spec) {
            Ok(execution) => execution,
            Err(message) => return ServerCore::error(message),
        };
        // Profiles feed the registry when the session finishes; they never
        // touch the deterministic report fields or checkpoint replay.
        execution.enable_profiling();
        let n = spec.build_shape().len();
        let script = ScenarioScript::for_spec(&spec);
        let session = self.scheduler.admit(execution, script);
        let response = Response::Submitted {
            session,
            name: spec.name.clone(),
            algorithm: spec.algorithm.name().to_string(),
            n,
        };
        self.specs.insert(session, spec);
        self.touch(session);
        response
    }

    fn status(&self, session: SessionId) -> Response {
        match (self.scheduler.view(session), self.scheduler.status(session)) {
            (Some(view), Some(status)) => Response::Status {
                session,
                paused: view.paused,
                steps: view.steps,
                rounds: view.rounds,
                status,
            },
            _ => ServerCore::unknown(session),
        }
    }

    /// The terminal line of a pumping request: the outcome if the session
    /// finished, its status otherwise.
    fn outcome_or_status(&self, session: SessionId) -> Response {
        match self.scheduler.outcome(session) {
            Some(Ok(report)) => Response::Done {
                session,
                report: report.clone(),
            },
            Some(Err(error)) => Response::Failed {
                session,
                error: error.to_string(),
            },
            None => self.status(session),
        }
    }

    fn watch(&mut self, session: SessionId, rounds: u64, out: &mut Vec<Response>) {
        let Some(view) = self.scheduler.view(session) else {
            out.push(ServerCore::unknown(session));
            return;
        };
        self.scheduler.set_recording(session, true);
        self.scheduler
            .set_goal(session, Goal::Rounds(view.rounds + rounds));
        self.drive(session);
        self.scheduler.set_goal(session, Goal::Hold);
        self.scheduler.set_recording(session, false);
        for status in self.scheduler.drain_recorded(session) {
            out.push(Response::Round { session, status });
        }
        out.push(self.outcome_or_status(session));
    }

    fn run(&mut self, session: SessionId, out: &mut Vec<Response>) {
        if self.scheduler.view(session).is_none() {
            out.push(ServerCore::unknown(session));
            return;
        }
        self.scheduler.set_goal(session, Goal::Complete);
        self.drive(session);
        out.push(self.outcome_or_status(session));
    }

    fn perturb(&mut self, session: SessionId, event: PerturbationSpec) -> Response {
        let Some(view) = self.scheduler.view(session) else {
            return ServerCore::unknown(session);
        };
        let spec = self.specs.get_mut(&session).expect("specs mirror sessions");
        if view.done || self.scheduler.status(session).is_some_and(|s| s.finished) {
            return ServerCore::error(format!("session {session} has finished"));
        }
        if !spec.algorithm.supports_perturbations() {
            return ServerCore::error(format!(
                "`{}` runs no round-driven phase to perturb",
                spec.algorithm.name()
            ));
        }
        // Events at rounds the session already completed would fire under
        // replay but not live, breaking checkpoint determinism — reject
        // them so every accepted event replays exactly as it ran.
        if event.round() < view.rounds {
            return ServerCore::error(format!(
                "session {session} already completed round {} (event targets round {})",
                view.rounds,
                event.round()
            ));
        }
        spec.perturbations.push(event);
        let script = self.scheduler.payload_mut(session).expect("session exists");
        script.push_perturbation(event);
        Response::Perturbed {
            session,
            events: script.perturbations().specs().len(),
        }
    }

    /// Appends a fault process to a live session's plan — the generalised
    /// `perturb`, with the identical rejection rules: finished sessions,
    /// algorithms with no round-driven phase, and processes whose first
    /// firing round the session already completed are rejected, so every
    /// accepted process replays identically from a checkpoint.
    fn fault(&mut self, session: SessionId, process: FaultProcess) -> Response {
        let Some(view) = self.scheduler.view(session) else {
            return ServerCore::unknown(session);
        };
        let spec = self.specs.get_mut(&session).expect("specs mirror sessions");
        if view.done || self.scheduler.status(session).is_some_and(|s| s.finished) {
            return ServerCore::error(format!("session {session} has finished"));
        }
        if !spec.algorithm.supports_perturbations() {
            return ServerCore::error(format!(
                "`{}` runs no round-driven phase to fault",
                spec.algorithm.name()
            ));
        }
        // Like stale perturbations: a process starting at a round the
        // session already completed would fire under replay but not live,
        // breaking checkpoint determinism.
        if process.start < view.rounds {
            return ServerCore::error(format!(
                "session {session} already completed round {} (process starts at round {})",
                view.rounds, process.start
            ));
        }
        spec.faults.processes.push(process);
        let script = self.scheduler.payload_mut(session).expect("session exists");
        script.push_fault(process);
        Response::Faulted {
            session,
            processes: script.faults().plan().processes.len(),
        }
    }

    fn pause(&mut self, session: SessionId) -> Response {
        if self.scheduler.pause(session) {
            Response::Paused { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn resume(&mut self, session: SessionId) -> Response {
        if self.scheduler.resume(session) {
            Response::Resumed { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn cancel(&mut self, session: SessionId) -> Response {
        if self.scheduler.view(session).is_some() {
            self.forget(session);
            Response::Cancelled { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn checkpoint(&self, session: SessionId) -> Response {
        match self.session_checkpoint(session) {
            Some(checkpoint) => Response::Checkpointed {
                session,
                checkpoint,
            },
            None => ServerCore::unknown(session),
        }
    }

    fn restore(&mut self, checkpoint: SessionCheckpoint) -> Response {
        if let Some(busy) = self.at_budget() {
            return busy;
        }
        let mut execution = match ServerCore::start(&checkpoint.spec) {
            Ok(execution) => execution,
            Err(message) => return ServerCore::error(message),
        };
        execution.enable_profiling();
        let script = ScenarioScript::for_spec(&checkpoint.spec);
        match self
            .scheduler
            .restore(execution, script, &checkpoint.execution, &apply_scripts)
        {
            Ok(session) => {
                self.specs.insert(session, checkpoint.spec);
                self.touch(session);
                self.restores += 1;
                if trace::enabled() {
                    trace::instant("server", format!("restore:session-{session}"));
                }
                let view = self.scheduler.view(session).expect("just restored");
                Response::Restored {
                    session,
                    steps: view.steps,
                    rounds: view.rounds,
                }
            }
            Err(error) => ServerCore::error(format!("restore `{}`: {error}", checkpoint.spec.name)),
        }
    }

    fn list(&self) -> Response {
        let sessions = self
            .scheduler
            .ids()
            .into_iter()
            .map(|session| {
                let view = self.scheduler.view(session).expect("listed id exists");
                let spec = &self.specs[&session];
                SessionSummary {
                    session,
                    name: spec.name.clone(),
                    algorithm: spec.algorithm.name().to_string(),
                    rounds: view.rounds,
                    paused: view.paused,
                    done: view.done,
                }
            })
            .collect();
        Response::Sessions { sessions }
    }
}

impl Default for ServerCore {
    /// A sequential core with a 64-step slice budget.
    fn default() -> ServerCore {
        ServerCore::new(64, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_scenarios::GeneratorSpec;

    fn spec(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(name, GeneratorSpec::Annulus { outer: 4, inner: 2 })
    }

    fn handle(core: &mut ServerCore, request: Request) -> Vec<Response> {
        let mut out = Vec::new();
        core.handle(request, &mut out);
        assert!(out.last().is_some_and(Response::is_final));
        assert!(out[..out.len() - 1].iter().all(|r| !r.is_final()));
        out
    }

    fn submit(core: &mut ServerCore, name: &str) -> SessionId {
        match handle(core, Request::Submit { spec: spec(name) }).remove(0) {
            Response::Submitted { session, .. } => session,
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    #[test]
    fn submit_watch_run_produces_rounds_then_a_report() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        let watched = handle(&mut core, Request::Watch { session, rounds: 3 });
        assert_eq!(watched.len(), 4, "3 round lines + final status");
        assert!(watched[..3]
            .iter()
            .all(|r| matches!(r, Response::Round { .. })));
        let finished = handle(&mut core, Request::Run { session });
        match &finished[finished.len() - 1] {
            Response::Done { report, .. } => assert!(report.unique_leader()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_sessions_restore_to_the_same_report() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Run { session });
        let reference = match handle(&mut core, Request::Run { session }).remove(0) {
            Response::Done { report, .. } => report,
            other => panic!("expected Done, got {other:?}"),
        };

        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 4 });
        let checkpoint = match handle(&mut core, Request::Checkpoint { session }).remove(0) {
            Response::Checkpointed { checkpoint, .. } => checkpoint,
            other => panic!("expected Checkpointed, got {other:?}"),
        };

        // A brand-new core stands in for a fresh server process.
        let mut fresh = ServerCore::default();
        let restored = match handle(&mut fresh, Request::Restore { checkpoint }).remove(0) {
            Response::Restored { session, .. } => session,
            other => panic!("expected Restored, got {other:?}"),
        };
        match handle(&mut fresh, Request::Run { session: restored }).remove(0) {
            Response::Done { report, .. } => assert_eq!(report, reference),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn perturbations_past_the_cursor_are_rejected() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 5 });
        let stale = PerturbationSpec::RemoveRandom {
            round: 2,
            count: 1,
            seed: 1,
        };
        match handle(
            &mut core,
            Request::Perturb {
                session,
                event: stale,
            },
        )
        .remove(0)
        {
            Response::Error { message } => assert!(message.contains("already completed")),
            other => panic!("expected Error, got {other:?}"),
        }
        let due = PerturbationSpec::RemoveRandom {
            round: 8,
            count: 2,
            seed: 1,
        };
        match handle(
            &mut core,
            Request::Perturb {
                session,
                event: due,
            },
        )
        .remove(0)
        {
            Response::Perturbed { events, .. } => assert_eq!(events, 1),
            other => panic!("expected Perturbed, got {other:?}"),
        }
    }

    #[test]
    fn fault_processes_past_the_cursor_are_rejected() {
        use pm_faults::FaultKind;
        // Satellite contract: fault plans obey exactly the perturbation
        // cursor rule — a process whose first firing round the session
        // already completed is rejected with the same wording, so every
        // accepted process replays identically from a checkpoint.
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 5 });
        let stale = FaultProcess::once(FaultKind::Removals, 2, 1);
        match handle(
            &mut core,
            Request::Fault {
                session,
                process: stale,
            },
        )
        .remove(0)
        {
            Response::Error { message } => assert!(message.contains("already completed")),
            other => panic!("expected Error, got {other:?}"),
        }
        let due = FaultProcess::periodic(FaultKind::Removals, 8, 2, 12, 1);
        match handle(
            &mut core,
            Request::Fault {
                session,
                process: due,
            },
        )
        .remove(0)
        {
            Response::Faulted { processes, .. } => assert_eq!(processes, 1),
            other => panic!("expected Faulted, got {other:?}"),
        }
        // The spec mirrors the injection, so checkpoints replay it.
        match handle(&mut core, Request::Checkpoint { session }).remove(0) {
            Response::Checkpointed { checkpoint, .. } => {
                assert_eq!(checkpoint.spec.faults.processes, vec![due]);
            }
            other => panic!("expected Checkpointed, got {other:?}"),
        }
    }

    #[test]
    fn faulted_sessions_checkpoint_and_restore_byte_identically() {
        use pm_faults::{FaultKind, FaultPlan};
        // Self-stabilising contender: the only algorithm that survives a
        // periodic removal process past the pipeline's early fault window
        // without a reset, so the run actually terminates.
        let faulted = |name: &str| {
            spec(name)
                .algorithm(pm_scenarios::AlgorithmSpec::SelfStabMax)
                .faults(FaultPlan::new(7).process(FaultProcess::periodic(
                    FaultKind::Removals,
                    1,
                    3,
                    10,
                    1,
                )))
        };
        let reference = {
            let mut core = ServerCore::default();
            let session = match handle(
                &mut core,
                Request::Submit {
                    spec: faulted("ref"),
                },
            )
            .remove(0)
            {
                Response::Submitted { session, .. } => session,
                other => panic!("expected Submitted, got {other:?}"),
            };
            match handle(&mut core, Request::Run { session }).remove(0) {
                Response::Done { report, .. } => report,
                other => panic!("expected Done, got {other:?}"),
            }
        };
        assert!(reference.unique_leader());

        // Checkpoint mid-run (inside the fault window) and finish in a
        // fresh core: the fault firings replay bit-identically.
        let mut core = ServerCore::default();
        let session = match handle(
            &mut core,
            Request::Submit {
                spec: faulted("ref"),
            },
        )
        .remove(0)
        {
            Response::Submitted { session, .. } => session,
            other => panic!("expected Submitted, got {other:?}"),
        };
        handle(&mut core, Request::Watch { session, rounds: 4 });
        let checkpoint = match handle(&mut core, Request::Checkpoint { session }).remove(0) {
            Response::Checkpointed { checkpoint, .. } => checkpoint,
            other => panic!("expected Checkpointed, got {other:?}"),
        };
        let mut fresh = ServerCore::default();
        let restored = match handle(&mut fresh, Request::Restore { checkpoint }).remove(0) {
            Response::Restored { session, .. } => session,
            other => panic!("expected Restored, got {other:?}"),
        };
        match handle(&mut fresh, Request::Run { session: restored }).remove(0) {
            Response::Done { report, .. } => assert_eq!(report, reference),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn fault_plans_on_closed_form_algorithms_are_rejected_at_submit() {
        use pm_faults::{FaultKind, FaultPlan};
        let mut core = ServerCore::default();
        let bad = spec("bad")
            .algorithm(pm_scenarios::AlgorithmSpec::QuadraticBoundary)
            .faults(FaultPlan::new(1).process(FaultProcess::once(FaultKind::Removals, 1, 1)));
        match handle(&mut core, Request::Submit { spec: bad }).remove(0) {
            Response::Error { message } => {
                assert!(message.contains("fault plan"), "{message}");
                assert!(message.contains("no round-driven phase"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn lifecycle_verbs_cover_unknown_sessions() {
        let mut core = ServerCore::default();
        for request in [
            Request::Status { session: 9 },
            Request::Watch {
                session: 9,
                rounds: 1,
            },
            Request::Run { session: 9 },
            Request::Pause { session: 9 },
            Request::Resume { session: 9 },
            Request::Cancel { session: 9 },
            Request::Checkpoint { session: 9 },
        ] {
            match handle(&mut core, request).remove(0) {
                Response::Error { message } => assert!(message.contains("no session 9")),
                other => panic!("expected Error, got {other:?}"),
            }
        }
    }

    #[test]
    fn session_budget_rejects_with_retryable_busy() {
        let mut core = ServerCore::default();
        core.set_limits(ServerLimits {
            max_sessions: Some(1),
            idle_ttl: None,
        });
        let first = submit(&mut core, "a");
        match handle(&mut core, Request::Submit { spec: spec("b") }).remove(0) {
            Response::Busy { message } => assert!(message.contains("retry")),
            other => panic!("expected Busy, got {other:?}"),
        }
        // Freeing a slot makes the identical request succeed: the
        // rejection was retryable, not an error.
        handle(&mut core, Request::Cancel { session: first });
        submit(&mut core, "b");
    }

    #[test]
    fn idle_sessions_are_evicted_by_housekeeping() {
        let mut core = ServerCore::default();
        core.set_limits(ServerLimits {
            max_sessions: None,
            idle_ttl: Some(Duration::ZERO),
        });
        submit(&mut core, "a");
        submit(&mut core, "b");
        let (evicted, written) = core.housekeeping();
        assert_eq!((evicted, written), (2, 0));
        assert_eq!(core.sessions(), 0);
        match handle(&mut core, Request::Stats).remove(0) {
            Response::Stats { stats } => assert_eq!(stats.evictions, 2),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_partitions_sessions_and_counts_sweeps() {
        let mut core = ServerCore::default();
        let a = submit(&mut core, "a");
        let b = submit(&mut core, "b");
        handle(&mut core, Request::Pause { session: b });
        handle(&mut core, Request::Run { session: a });
        match handle(&mut core, Request::Stats).remove(0) {
            Response::Stats { stats } => {
                assert_eq!(
                    (stats.sessions, stats.running, stats.paused, stats.done),
                    (2, 0, 1, 1)
                );
                assert!(stats.sweeps > 0, "run pumped at least one sweep");
                assert_eq!(stats.checkpoints_written, 0, "no persistence attached");
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pm-server-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn autosaved_sessions_recover_byte_identically_in_a_fresh_core() {
        let reference = {
            let mut core = ServerCore::default();
            let session = submit(&mut core, "a");
            match handle(&mut core, Request::Run { session }).remove(0) {
                Response::Done { report, .. } => report,
                other => panic!("expected Done, got {other:?}"),
            }
        };

        let dir = temp_dir("recover");
        let mut crashed = ServerCore::default();
        assert_eq!(crashed.attach_persistence(&dir).unwrap(), (0, 0));
        let session = submit(&mut crashed, "a");
        handle(&mut crashed, Request::Watch { session, rounds: 4 });
        let (_, written) = crashed.housekeeping();
        assert_eq!(written, 1, "the advanced session was autosaved");
        let (_, rewritten) = crashed.housekeeping();
        assert_eq!(rewritten, 0, "unchanged sessions are not rewritten");
        drop(crashed); // SIGKILL stand-in: no shutdown, no final sweep.

        // A torn file next to the good one must be rejected, not fatal.
        std::fs::write(dir.join("session-7.json"), b"{\"Sub").unwrap();
        let mut fresh = ServerCore::default();
        let (restored, rejected) = fresh.attach_persistence(&dir).unwrap();
        assert_eq!((restored, rejected), (1, 1));
        let restored_id = match handle(&mut fresh, Request::Sessions).remove(0) {
            Response::Sessions { sessions } => {
                assert_eq!(sessions.len(), 1);
                assert_eq!(sessions[0].rounds, 4, "recovery lands on the saved cursor");
                sessions[0].session
            }
            other => panic!("expected Sessions, got {other:?}"),
        };
        match handle(
            &mut fresh,
            Request::Run {
                session: restored_id,
            },
        )
        .remove(0)
        {
            Response::Done { report, .. } => assert_eq!(report, reference),
            other => panic!("expected Done, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancel_removes_the_checkpoint_file() {
        let dir = temp_dir("cancel");
        let mut core = ServerCore::default();
        core.attach_persistence(&dir).unwrap();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 2 });
        core.housekeeping();
        assert!(dir.join(format!("session-{session}.json")).exists());
        handle(&mut core, Request::Cancel { session });
        assert!(
            !dir.join(format!("session-{session}.json")).exists(),
            "cancelled sessions must not resurrect on restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sessions_listing_tracks_lifecycle() {
        let mut core = ServerCore::default();
        let a = submit(&mut core, "a");
        let b = submit(&mut core, "b");
        handle(&mut core, Request::Pause { session: a });
        handle(&mut core, Request::Run { session: b });
        match handle(&mut core, Request::Sessions).remove(0) {
            Response::Sessions { sessions } => {
                assert_eq!(sessions.len(), 2);
                assert!(sessions[0].paused && !sessions[0].done);
                assert!(!sessions[1].paused && sessions[1].done);
            }
            other => panic!("expected Sessions, got {other:?}"),
        }
        handle(&mut core, Request::Cancel { session: a });
        assert_eq!(core.sessions(), 1);
    }
}
