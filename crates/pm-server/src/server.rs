//! The transport-agnostic server core: protocol requests in, protocol
//! responses out, with every live session multiplexed through one
//! [`SessionScheduler`].
//!
//! The core is deliberately synchronous and single-threaded at the protocol
//! layer (requests are served in arrival order); concurrency lives below it,
//! in the scheduler's sharded sweeps, and *fairness* is the scheduler's
//! round-robin slice budget — a `watch` or `run` request pumps the whole
//! scheduler, so every runnable session advances while one client's request
//! is being served, and no session can starve the rest.

use crate::protocol::{Request, Response, SessionCheckpoint, SessionSummary};
use pm_core::api::Execution;
use pm_core::session::{Goal, SessionId, SessionScheduler};
use pm_scenarios::{PerturbationScript, PerturbationSpec, ScenarioSpec};
use std::collections::BTreeMap;

/// The per-step hook every session runs under: fire the session's due
/// perturbation events against the live system before the next round. Live
/// stepping and checkpoint replay share this hook, which is what makes
/// restored sessions reproduce perturbed runs exactly.
fn apply_perturbations(script: &mut PerturbationScript, execution: &mut Execution<'static>) {
    script.apply_due(execution);
}

/// The multi-tenant session server behind every transport. See the
/// [module docs](self) for the scheduling model and `PROTOCOL.md` for the
/// wire protocol.
pub struct ServerCore {
    scheduler: SessionScheduler<PerturbationScript>,
    /// Each session's scenario, kept current with injected perturbations —
    /// this is what a checkpoint persists, so a fresh process can rebuild
    /// the session from nothing but the checkpoint.
    specs: BTreeMap<SessionId, ScenarioSpec>,
}

impl ServerCore {
    /// A server core giving each runnable session at most `slice_steps`
    /// steps per scheduler sweep, sweeping on up to `threads` threads.
    pub fn new(slice_steps: u64, threads: usize) -> ServerCore {
        ServerCore {
            scheduler: SessionScheduler::with_threads(slice_steps, threads),
            specs: BTreeMap::new(),
        }
    }

    /// Number of live sessions.
    pub fn sessions(&self) -> usize {
        self.scheduler.len()
    }

    /// Serves one request, appending every response line to `out` (exactly
    /// one final response, preceded by any number of [`Response::Round`]
    /// stream lines). Returns `true` iff the request was [`Request::Shutdown`]
    /// and the transport should stop reading.
    pub fn handle(&mut self, request: Request, out: &mut Vec<Response>) -> bool {
        match request {
            Request::Submit { spec } => out.push(self.submit(spec)),
            Request::Status { session } => out.push(self.status(session)),
            Request::Watch { session, rounds } => self.watch(session, rounds, out),
            Request::Run { session } => self.run(session, out),
            Request::Perturb { session, event } => out.push(self.perturb(session, event)),
            Request::Pause { session } => out.push(self.pause(session)),
            Request::Resume { session } => out.push(self.resume(session)),
            Request::Cancel { session } => out.push(self.cancel(session)),
            Request::Checkpoint { session } => out.push(self.checkpoint(session)),
            Request::Restore { checkpoint } => out.push(self.restore(checkpoint)),
            Request::Sessions => out.push(self.list()),
            Request::Shutdown => {
                out.push(Response::Bye);
                return true;
            }
        }
        false
    }

    fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
        }
    }

    fn unknown(session: SessionId) -> Response {
        ServerCore::error(format!("no session {session}"))
    }

    /// Starts an owned execution for a scenario — the shared path behind
    /// `submit` and `restore`.
    fn start(spec: &ScenarioSpec) -> Result<Execution<'static>, String> {
        if !spec.perturbations.is_empty() && !spec.algorithm.supports_perturbations() {
            return Err(format!(
                "scenario `{}` attaches a perturbation script to `{}`, which runs no \
                 round-driven phase",
                spec.name,
                spec.algorithm.name()
            ));
        }
        let shape = spec.build_shape();
        spec.algorithm
            .instance()
            .start_owned(&shape, spec.scheduler.build(), &spec.options)
            .map_err(|e| format!("start `{}`: {e}", spec.name))
    }

    fn submit(&mut self, spec: ScenarioSpec) -> Response {
        let execution = match ServerCore::start(&spec) {
            Ok(execution) => execution,
            Err(message) => return ServerCore::error(message),
        };
        let n = spec.build_shape().len();
        let script = PerturbationScript::new(spec.perturbations.clone());
        let session = self.scheduler.admit(execution, script);
        let response = Response::Submitted {
            session,
            name: spec.name.clone(),
            algorithm: spec.algorithm.name().to_string(),
            n,
        };
        self.specs.insert(session, spec);
        response
    }

    fn status(&self, session: SessionId) -> Response {
        match (self.scheduler.view(session), self.scheduler.status(session)) {
            (Some(view), Some(status)) => Response::Status {
                session,
                paused: view.paused,
                steps: view.steps,
                rounds: view.rounds,
                status,
            },
            _ => ServerCore::unknown(session),
        }
    }

    /// The terminal line of a pumping request: the outcome if the session
    /// finished, its status otherwise.
    fn outcome_or_status(&self, session: SessionId) -> Response {
        match self.scheduler.outcome(session) {
            Some(Ok(report)) => Response::Done {
                session,
                report: report.clone(),
            },
            Some(Err(error)) => Response::Failed {
                session,
                error: error.to_string(),
            },
            None => self.status(session),
        }
    }

    fn watch(&mut self, session: SessionId, rounds: u64, out: &mut Vec<Response>) {
        let Some(view) = self.scheduler.view(session) else {
            out.push(ServerCore::unknown(session));
            return;
        };
        self.scheduler.set_recording(session, true);
        self.scheduler
            .set_goal(session, Goal::Rounds(view.rounds + rounds));
        self.scheduler.drive(session, &apply_perturbations);
        self.scheduler.set_goal(session, Goal::Hold);
        self.scheduler.set_recording(session, false);
        for status in self.scheduler.drain_recorded(session) {
            out.push(Response::Round { session, status });
        }
        out.push(self.outcome_or_status(session));
    }

    fn run(&mut self, session: SessionId, out: &mut Vec<Response>) {
        if self.scheduler.view(session).is_none() {
            out.push(ServerCore::unknown(session));
            return;
        }
        self.scheduler.set_goal(session, Goal::Complete);
        self.scheduler.drive(session, &apply_perturbations);
        out.push(self.outcome_or_status(session));
    }

    fn perturb(&mut self, session: SessionId, event: PerturbationSpec) -> Response {
        let Some(view) = self.scheduler.view(session) else {
            return ServerCore::unknown(session);
        };
        let spec = self.specs.get_mut(&session).expect("specs mirror sessions");
        if view.done || self.scheduler.status(session).is_some_and(|s| s.finished) {
            return ServerCore::error(format!("session {session} has finished"));
        }
        if !spec.algorithm.supports_perturbations() {
            return ServerCore::error(format!(
                "`{}` runs no round-driven phase to perturb",
                spec.algorithm.name()
            ));
        }
        // Events at rounds the session already completed would fire under
        // replay but not live, breaking checkpoint determinism — reject
        // them so every accepted event replays exactly as it ran.
        if event.round() < view.rounds {
            return ServerCore::error(format!(
                "session {session} already completed round {} (event targets round {})",
                view.rounds,
                event.round()
            ));
        }
        spec.perturbations.push(event);
        let script = self.scheduler.payload_mut(session).expect("session exists");
        script.push(event);
        Response::Perturbed {
            session,
            events: script.specs().len(),
        }
    }

    fn pause(&mut self, session: SessionId) -> Response {
        if self.scheduler.pause(session) {
            Response::Paused { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn resume(&mut self, session: SessionId) -> Response {
        if self.scheduler.resume(session) {
            Response::Resumed { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn cancel(&mut self, session: SessionId) -> Response {
        if self.scheduler.remove(session).is_some() {
            self.specs.remove(&session);
            Response::Cancelled { session }
        } else {
            ServerCore::unknown(session)
        }
    }

    fn checkpoint(&self, session: SessionId) -> Response {
        match (self.scheduler.checkpoint(session), self.specs.get(&session)) {
            (Some(execution), Some(spec)) => Response::Checkpointed {
                session,
                checkpoint: SessionCheckpoint {
                    spec: spec.clone(),
                    execution,
                },
            },
            _ => ServerCore::unknown(session),
        }
    }

    fn restore(&mut self, checkpoint: SessionCheckpoint) -> Response {
        let execution = match ServerCore::start(&checkpoint.spec) {
            Ok(execution) => execution,
            Err(message) => return ServerCore::error(message),
        };
        let script = PerturbationScript::new(checkpoint.spec.perturbations.clone());
        match self.scheduler.restore(
            execution,
            script,
            &checkpoint.execution,
            &apply_perturbations,
        ) {
            Ok(session) => {
                self.specs.insert(session, checkpoint.spec);
                let view = self.scheduler.view(session).expect("just restored");
                Response::Restored {
                    session,
                    steps: view.steps,
                    rounds: view.rounds,
                }
            }
            Err(error) => ServerCore::error(format!("restore `{}`: {error}", checkpoint.spec.name)),
        }
    }

    fn list(&self) -> Response {
        let sessions = self
            .scheduler
            .ids()
            .into_iter()
            .map(|session| {
                let view = self.scheduler.view(session).expect("listed id exists");
                let spec = &self.specs[&session];
                SessionSummary {
                    session,
                    name: spec.name.clone(),
                    algorithm: spec.algorithm.name().to_string(),
                    rounds: view.rounds,
                    paused: view.paused,
                    done: view.done,
                }
            })
            .collect();
        Response::Sessions { sessions }
    }
}

impl Default for ServerCore {
    /// A sequential core with a 64-step slice budget.
    fn default() -> ServerCore {
        ServerCore::new(64, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_scenarios::GeneratorSpec;

    fn spec(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(name, GeneratorSpec::Annulus { outer: 4, inner: 2 })
    }

    fn handle(core: &mut ServerCore, request: Request) -> Vec<Response> {
        let mut out = Vec::new();
        core.handle(request, &mut out);
        assert!(out.last().is_some_and(Response::is_final));
        assert!(out[..out.len() - 1].iter().all(|r| !r.is_final()));
        out
    }

    fn submit(core: &mut ServerCore, name: &str) -> SessionId {
        match handle(core, Request::Submit { spec: spec(name) }).remove(0) {
            Response::Submitted { session, .. } => session,
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    #[test]
    fn submit_watch_run_produces_rounds_then_a_report() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        let watched = handle(&mut core, Request::Watch { session, rounds: 3 });
        assert_eq!(watched.len(), 4, "3 round lines + final status");
        assert!(watched[..3]
            .iter()
            .all(|r| matches!(r, Response::Round { .. })));
        let finished = handle(&mut core, Request::Run { session });
        match &finished[finished.len() - 1] {
            Response::Done { report, .. } => assert!(report.unique_leader()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_sessions_restore_to_the_same_report() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Run { session });
        let reference = match handle(&mut core, Request::Run { session }).remove(0) {
            Response::Done { report, .. } => report,
            other => panic!("expected Done, got {other:?}"),
        };

        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 4 });
        let checkpoint = match handle(&mut core, Request::Checkpoint { session }).remove(0) {
            Response::Checkpointed { checkpoint, .. } => checkpoint,
            other => panic!("expected Checkpointed, got {other:?}"),
        };

        // A brand-new core stands in for a fresh server process.
        let mut fresh = ServerCore::default();
        let restored = match handle(&mut fresh, Request::Restore { checkpoint }).remove(0) {
            Response::Restored { session, .. } => session,
            other => panic!("expected Restored, got {other:?}"),
        };
        match handle(&mut fresh, Request::Run { session: restored }).remove(0) {
            Response::Done { report, .. } => assert_eq!(report, reference),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn perturbations_past_the_cursor_are_rejected() {
        let mut core = ServerCore::default();
        let session = submit(&mut core, "a");
        handle(&mut core, Request::Watch { session, rounds: 5 });
        let stale = PerturbationSpec::RemoveRandom {
            round: 2,
            count: 1,
            seed: 1,
        };
        match handle(
            &mut core,
            Request::Perturb {
                session,
                event: stale,
            },
        )
        .remove(0)
        {
            Response::Error { message } => assert!(message.contains("already completed")),
            other => panic!("expected Error, got {other:?}"),
        }
        let due = PerturbationSpec::RemoveRandom {
            round: 8,
            count: 2,
            seed: 1,
        };
        match handle(
            &mut core,
            Request::Perturb {
                session,
                event: due,
            },
        )
        .remove(0)
        {
            Response::Perturbed { events, .. } => assert_eq!(events, 1),
            other => panic!("expected Perturbed, got {other:?}"),
        }
    }

    #[test]
    fn lifecycle_verbs_cover_unknown_sessions() {
        let mut core = ServerCore::default();
        for request in [
            Request::Status { session: 9 },
            Request::Watch {
                session: 9,
                rounds: 1,
            },
            Request::Run { session: 9 },
            Request::Pause { session: 9 },
            Request::Resume { session: 9 },
            Request::Cancel { session: 9 },
            Request::Checkpoint { session: 9 },
        ] {
            match handle(&mut core, request).remove(0) {
                Response::Error { message } => assert!(message.contains("no session 9")),
                other => panic!("expected Error, got {other:?}"),
            }
        }
    }

    #[test]
    fn sessions_listing_tracks_lifecycle() {
        let mut core = ServerCore::default();
        let a = submit(&mut core, "a");
        let b = submit(&mut core, "b");
        handle(&mut core, Request::Pause { session: a });
        handle(&mut core, Request::Run { session: b });
        match handle(&mut core, Request::Sessions).remove(0) {
            Response::Sessions { sessions } => {
                assert_eq!(sessions.len(), 2);
                assert!(sessions[0].paused && !sessions[0].done);
                assert!(!sessions[1].paused && sessions[1].done);
            }
            other => panic!("expected Sessions, got {other:?}"),
        }
        handle(&mut core, Request::Cancel { session: a });
        assert_eq!(core.sessions(), 1);
    }
}
