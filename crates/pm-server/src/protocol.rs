//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one [`Request`] serialized as a single JSON line; the
//! server answers with one or more [`Response`] lines, of which exactly the
//! last is *final* ([`Response::is_final`]) — the only non-final response is
//! [`Response::Round`], the per-round status stream of a `watch` window, so
//! a client reads lines until it sees anything else. Enums use serde's
//! externally-tagged encoding (`{"Submit": {...}}`, bare `"Sessions"` for
//! unit verbs); every field is always present (`null` for absent options).
//! `PROTOCOL.md` at the repository root documents each verb with examples.

use pm_core::api::{ExecutionStatus, RunReport};
use pm_core::session::{ExecutionCheckpoint, SessionId};
use pm_faults::FaultProcess;
use pm_scenarios::{PerturbationSpec, ScenarioSpec};
use pm_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// One client request, one JSON line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Admits a new session for the scenario; the session starts parked.
    Submit {
        /// The full declarative scenario to run.
        spec: ScenarioSpec,
    },
    /// Reports the session's current election status without advancing it.
    Status {
        /// The session to inspect.
        session: SessionId,
    },
    /// Advances the session by up to `rounds` further rounds of its
    /// round-driven phase, streaming one [`Response::Round`] line per
    /// completed round (other live sessions keep advancing fairly during
    /// the window). Closed-form algorithms complete no discrete rounds, so
    /// they stream zero `Round` lines and run to completion instead.
    Watch {
        /// The session to advance.
        session: SessionId,
        /// How many additional rounds to stream.
        rounds: u64,
    },
    /// Runs the session to completion (final report or error).
    Run {
        /// The session to finish.
        session: SessionId,
    },
    /// Injects an adversarial event into a live session's script. Rejected
    /// once the session has finished or already advanced past the event's
    /// round (accepted events always replay identically from a checkpoint).
    Perturb {
        /// The session to perturb.
        session: SessionId,
        /// The event to append to the session's script.
        event: PerturbationSpec,
    },
    /// Appends a fault process to a live session's plan (the generalised
    /// adversary: periodic removals, regrow, corruption, relocation). The
    /// same rejection rules as `Perturb` apply: finished sessions, sessions
    /// whose round cursor already passed the process's first firing round,
    /// and algorithms with no round-driven phase are rejected, so accepted
    /// processes always replay identically from a checkpoint.
    Fault {
        /// The session to fault.
        session: SessionId,
        /// The process to append to the session's fault plan.
        process: FaultProcess,
    },
    /// Parks the session: sweeps skip it until `Resume`.
    Pause {
        /// The session to pause.
        session: SessionId,
    },
    /// Clears the session's pause flag.
    Resume {
        /// The session to resume.
        session: SessionId,
    },
    /// Removes the session entirely.
    Cancel {
        /// The session to remove.
        session: SessionId,
    },
    /// Snapshots the session as a [`SessionCheckpoint`] that restores
    /// byte-identically — in this server process or a fresh one.
    Checkpoint {
        /// The session to snapshot.
        session: SessionId,
    },
    /// Admits a session rebuilt from a checkpoint (validated by replay).
    Restore {
        /// The checkpoint to rebuild from.
        checkpoint: SessionCheckpoint,
    },
    /// Lists every live session.
    Sessions,
    /// Reports server-wide operational counters as [`Response::Stats`].
    /// Uptime is wall-clock, so transcripts containing this verb are not
    /// byte-reproducible — keep it out of golden-diffed scripts.
    Stats,
    /// Reports the full telemetry registry as [`Response::Metrics`]: one
    /// consistent snapshot rendered both as structured JSON and as
    /// Prometheus text exposition. Like `Stats`, the payload contains
    /// wall-clock-derived values (latency histograms, durations), so it is
    /// *not* byte-reproducible — keep it out of golden-diffed scripts.
    Metrics,
    /// Stops serving after acknowledging with [`Response::Bye`].
    Shutdown,
}

/// One server response, one JSON line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Submit` acknowledged; the session is parked until watched or run.
    Submitted {
        /// The new session's id.
        session: SessionId,
        /// The scenario name, echoed back.
        name: String,
        /// The algorithm's reporting name.
        algorithm: String,
        /// Particles in the initial configuration.
        n: usize,
    },
    /// The session's bookkeeping and election status.
    Status {
        /// The inspected session.
        session: SessionId,
        /// Whether the session is paused.
        paused: bool,
        /// Steps executed so far (the checkpoint replay cursor).
        steps: u64,
        /// Completed round-driven rounds so far.
        rounds: u64,
        /// The election status snapshot.
        status: ExecutionStatus,
    },
    /// One completed round of a `watch` window (the only non-final
    /// response: more lines follow).
    Round {
        /// The watched session.
        session: SessionId,
        /// Status after the round completed.
        status: ExecutionStatus,
    },
    /// The session finished with a final report.
    Done {
        /// The finished session.
        session: SessionId,
        /// The election's final report.
        report: RunReport,
    },
    /// The session finished with an election error.
    Failed {
        /// The failed session.
        session: SessionId,
        /// The election error, rendered.
        error: String,
    },
    /// `Perturb` acknowledged.
    Perturbed {
        /// The perturbed session.
        session: SessionId,
        /// Total events now in the session's script.
        events: usize,
    },
    /// `Fault` acknowledged.
    Faulted {
        /// The faulted session.
        session: SessionId,
        /// Total fault processes now in the session's plan.
        processes: usize,
    },
    /// `Pause` acknowledged.
    Paused {
        /// The paused session.
        session: SessionId,
    },
    /// `Resume` acknowledged.
    Resumed {
        /// The resumed session.
        session: SessionId,
    },
    /// `Cancel` acknowledged.
    Cancelled {
        /// The removed session.
        session: SessionId,
    },
    /// `Checkpoint` acknowledged.
    Checkpointed {
        /// The snapshotted session.
        session: SessionId,
        /// The restorable snapshot.
        checkpoint: SessionCheckpoint,
    },
    /// `Restore` acknowledged: the checkpoint replayed and validated.
    Restored {
        /// The restored session's id (fresh — ids are never reused).
        session: SessionId,
        /// Steps replayed (equals the checkpoint's cursor).
        steps: u64,
        /// Completed rounds after replay.
        rounds: u64,
    },
    /// The live session listing.
    Sessions {
        /// One summary per live session, ascending by id.
        sessions: Vec<SessionSummary>,
    },
    /// The server-wide operational counters.
    Stats {
        /// The counters snapshot.
        stats: ServerStats,
    },
    /// The telemetry registry, snapshotted once and rendered twice.
    Metrics {
        /// The structured snapshot (counters, gauges, histograms).
        metrics: MetricsSnapshot,
        /// The same snapshot as Prometheus text exposition (one string,
        /// embedded newlines — scrapers unwrap it to a `/metrics` body).
        prometheus: String,
    },
    /// The request was valid but the server is at its session budget.
    /// Unlike [`Response::Error`], this rejection is *retryable*: the same
    /// request succeeds once sessions complete, are cancelled, or expire —
    /// clients should back off and resend.
    Busy {
        /// Which budget rejected the request.
        message: String,
    },
    /// The request could not be served (unknown session, invalid spec,
    /// malformed JSON, rejected perturbation or checkpoint…).
    Error {
        /// What went wrong.
        message: String,
    },
    /// `Shutdown` acknowledged; the server stops reading.
    Bye,
}

impl Response {
    /// Whether this response ends its request's line stream. Everything is
    /// final except [`Response::Round`].
    pub fn is_final(&self) -> bool {
        !matches!(self, Response::Round { .. })
    }
}

/// Server-wide operational counters, reported by the `stats` verb. The
/// session counts partition the live sessions: `running + paused + done ==
/// sessions`. The remaining counters are monotone over the process
/// lifetime (they reset on restart, not on recovery).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Milliseconds since the server core was created.
    pub uptime_ms: u64,
    /// Live sessions right now.
    pub sessions: usize,
    /// Live sessions that are neither paused nor finished.
    pub running: usize,
    /// Live sessions currently paused.
    pub paused: usize,
    /// Live sessions holding a final outcome.
    pub done: usize,
    /// Scheduler sweeps performed by `watch`/`run` pumping.
    pub sweeps: u64,
    /// Checkpoint files written by autosave (skips unchanged sessions).
    pub checkpoints_written: u64,
    /// Sessions evicted by the idle-TTL sweep.
    pub evictions: u64,
    /// Sessions rebuilt from checkpoints: `restore` verbs plus the startup
    /// recovery scan.
    pub restores: u64,
    /// Request bytes read off client connections (all transports).
    pub bytes_read: u64,
    /// Response bytes written to client connections (all transports).
    pub bytes_written: u64,
    /// Client connections currently open (the stdio transport counts as
    /// one connection for its whole lifetime).
    pub active_connections: i64,
}

/// One row of the `Sessions` listing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// The session's id.
    pub session: SessionId,
    /// The scenario name it was submitted with.
    pub name: String,
    /// The algorithm's reporting name.
    pub algorithm: String,
    /// Completed round-driven rounds so far.
    pub rounds: u64,
    /// Whether the session is paused.
    pub paused: bool,
    /// Whether the session has produced its outcome.
    pub done: bool,
}

/// A restorable session snapshot: the full scenario (original plus every
/// injected perturbation) and the execution's replay checkpoint. Restoring
/// rebuilds the scenario from scratch and replays
/// [`ExecutionCheckpoint::steps`] steps with the perturbation script live —
/// strict determinism makes the result byte-identical to the original
/// session, which the checkpoint's counters validate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// The scenario to rebuild (perturbations include injected events).
    pub spec: ScenarioSpec,
    /// The replay cursor and validation counters.
    pub execution: ExecutionCheckpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_scenarios::GeneratorSpec;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Submit {
                spec: ScenarioSpec::new("s", GeneratorSpec::Hexagon { radius: 3 }),
            },
            Request::Watch {
                session: 1,
                rounds: 3,
            },
            Request::Perturb {
                session: 1,
                event: PerturbationSpec::RemoveRandom {
                    round: 5,
                    count: 2,
                    seed: 9,
                },
            },
            Request::Fault {
                session: 1,
                process: FaultProcess::periodic(pm_faults::FaultKind::Removals, 2, 3, 11, 4),
            },
            Request::Sessions,
            Request::Shutdown,
        ];
        for request in requests {
            let line = serde_json::to_string(&request).unwrap();
            assert!(!line.contains('\n'), "one request, one line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn only_round_responses_are_non_final() {
        let round = Response::Round {
            session: 1,
            status: ExecutionStatus {
                algorithm: "dle+collect",
                phase: None,
                rounds_in_phase: 0,
                total_rounds: 0,
                decided: 0,
                undecided: 0,
                next_round: None,
                finished: false,
            },
        };
        assert!(!round.is_final());
        assert!(Response::Bye.is_final());
        assert!(Response::Error {
            message: "x".into()
        }
        .is_final());
    }
}
