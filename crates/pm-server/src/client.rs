//! The scripted client: drives a server child process from a `.jsonl`
//! script and records the full response transcript.
//!
//! Script lines are raw protocol [`Request`] JSON, plus two directives and
//! comments:
//!
//! * `# ...` — comment, ignored (the server ignores them too).
//! * `!restart` — shuts the current server child down cleanly and spawns a
//!   **fresh process**; the next request talks to the new server. This is
//!   how the end-to-end suite proves checkpoints survive server restarts.
//! * `!restore` — sends a `Restore` request carrying the checkpoint from
//!   the most recent `Checkpointed` response (typically right after
//!   `!restart`).
//!
//! The transcript is exactly the response lines the server(s) sent, in
//! order, with each request's lines prefixed by a `# >` echo of the request
//! for readability — deterministic end to end, so CI diffs it against a
//! committed golden file.
//!
//! When the server rejects a request with the retryable `Busy` response
//! (its session budget is exhausted), the client backs off and resends the
//! same line a bounded number of times before recording the rejection —
//! only the finally-accepted (or finally-rejected) response stream lands
//! in the transcript, so scripts that never hit the budget stay
//! byte-reproducible.

use crate::protocol::{Request, Response, SessionCheckpoint};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::Duration;

/// How many times a `Busy` rejection is retried before giving up.
const BUSY_RETRIES: u32 = 50;

/// A live server child process with line-buffered pipes.
struct ServerChild {
    child: Child,
    input: ChildStdin,
    output: BufReader<ChildStdout>,
}

impl ServerChild {
    fn spawn(command: &[String]) -> Result<ServerChild, String> {
        let (program, args) = command.split_first().ok_or("empty server command")?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn `{program}`: {e}"))?;
        let input = child.stdin.take().expect("stdin was piped");
        let output = BufReader::new(child.stdout.take().expect("stdout was piped"));
        Ok(ServerChild {
            child,
            input,
            output,
        })
    }

    /// Sends one request line and reads its full response stream (zero or
    /// more `Round` lines, then the final line).
    fn request(&mut self, line: &str) -> Result<Vec<(String, Response)>, String> {
        writeln!(self.input, "{line}").map_err(|e| format!("write to server: {e}"))?;
        self.input
            .flush()
            .map_err(|e| format!("flush to server: {e}"))?;
        let mut responses = Vec::new();
        loop {
            let mut raw = String::new();
            let read = self
                .output
                .read_line(&mut raw)
                .map_err(|e| format!("read from server: {e}"))?;
            if read == 0 {
                return Err("server closed its stdout mid-request".to_string());
            }
            let line = raw.trim_end().to_string();
            let response: Response = serde_json::from_str(&line)
                .map_err(|e| format!("unparseable server response `{line}`: {e}"))?;
            let done = response.is_final();
            responses.push((line, response));
            if done {
                return Ok(responses);
            }
        }
    }

    /// Clean shutdown: sends the `Shutdown` verb, confirms `Bye`, and reaps
    /// the process.
    fn shutdown(mut self) -> Result<(), String> {
        let request = serde_json::to_string(&Request::Shutdown).expect("unit verb serializes");
        let responses = self.request(&request)?;
        match responses.last() {
            Some((_, Response::Bye)) => {}
            other => return Err(format!("expected Bye on shutdown, got {other:?}")),
        }
        let status = self
            .child
            .wait()
            .map_err(|e| format!("wait for server: {e}"))?;
        if !status.success() {
            return Err(format!("server exited with {status}"));
        }
        Ok(())
    }
}

/// Runs a script against freshly spawned server children (respawned at
/// every `!restart`), writing the transcript to `transcript`. The server
/// is spawned as `command` (program + args), e.g.
/// `["/path/to/pm-scenarios", "serve", "--stdio"]`.
///
/// # Errors
///
/// Script parse errors, spawn/pipe failures, protocol violations (a
/// `!restore` before any checkpoint, an unparseable response), and unclean
/// server exits all surface as rendered strings.
pub fn run_script(
    command: &[String],
    script: &str,
    transcript: &mut dyn Write,
) -> Result<(), String> {
    let mut server = Some(ServerChild::spawn(command)?);
    let mut last_checkpoint: Option<SessionCheckpoint> = None;

    for (index, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = index + 1;
        let request_line = if line == "!restart" {
            if let Some(server) = server.take() {
                server.shutdown()?;
            }
            server = Some(ServerChild::spawn(command)?);
            writeln!(transcript, "# !restart").map_err(|e| format!("write transcript: {e}"))?;
            continue;
        } else if line == "!restore" {
            let checkpoint = last_checkpoint
                .clone()
                .ok_or(format!("line {lineno}: !restore before any checkpoint"))?;
            serde_json::to_string(&Request::Restore { checkpoint })
                .map_err(|e| format!("line {lineno}: serialize restore: {e}"))?
        } else {
            // Validate the script line up front so a typo fails loudly at
            // its line number instead of as a server-side Error response.
            serde_json::from_str::<Request>(line)
                .map_err(|e| format!("line {lineno}: malformed request: {e}"))?;
            line.to_string()
        };

        let active = server
            .as_mut()
            .ok_or(format!("line {lineno}: request after shutdown"))?;
        let echo = if line == "!restore" {
            line
        } else {
            request_line.as_str()
        };
        writeln!(transcript, "# > {echo}").map_err(|e| format!("write transcript: {e}"))?;
        let mut responses = active.request(&request_line)?;
        let mut attempt = 0;
        while matches!(responses.last(), Some((_, Response::Busy { .. }))) && attempt < BUSY_RETRIES
        {
            attempt += 1;
            std::thread::sleep(Duration::from_millis(u64::from(attempt.min(10)) * 5));
            responses = active.request(&request_line)?;
        }
        for (text, response) in responses {
            writeln!(transcript, "{text}").map_err(|e| format!("write transcript: {e}"))?;
            match response {
                Response::Checkpointed { checkpoint, .. } => last_checkpoint = Some(checkpoint),
                Response::Bye => {
                    server.take().expect("active server").child.wait().ok();
                }
                _ => {}
            }
        }
    }

    if let Some(server) = server.take() {
        server.shutdown()?;
    }
    Ok(())
}
