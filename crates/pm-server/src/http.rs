//! The HTTP/1.1 observability listener: a hand-rolled, GET-only,
//! std-`TcpListener` sidecar so ordinary scrape tooling (`curl`,
//! Prometheus, a browser) can read the server without speaking the line
//! protocol.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness: `200 ok`.
//! * `GET /metrics` — the registry in Prometheus text exposition; the
//!   exact snapshot the `metrics` verb returns (both go through
//!   [`ServerCore::metrics_snapshot`]), so the two scrape surfaces can
//!   never drift apart.
//! * `GET /stats` — the [`ServerStats`] struct behind the `stats` verb as
//!   a JSON object.
//! * `GET /trace` — drains the installed trace recorder as Chrome
//!   trace-event JSON (load in Perfetto or `chrome://tracing`); an empty
//!   but valid document when no recorder is installed.
//!
//! Everything else answers `404`; non-GET methods answer `405`; a request
//! line that is not `METHOD TARGET VERSION` answers `400`. Every response
//! carries `Content-Length` and `Connection: close` — one request per
//! connection keeps the parser trivial and scrape clients do exactly that
//! anyway.
//!
//! Like the `stats` and `metrics` verbs, nothing served here is
//! byte-reproducible; the listener exists for operators, not for golden
//! transcripts.
//!
//! [`ServerCore::metrics_snapshot`]: crate::server::ServerCore::metrics_snapshot
//! [`ServerStats`]: crate::protocol::ServerStats

use crate::transport::Shared;
use pm_telemetry::{info, trace, warn};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The log target every HTTP-side line is tagged with.
const LOG: &str = "pm_server::http";

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Hard per-connection read budget: a stalled scraper is dropped, it
/// cannot wedge the listener thread serving it.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Longest accepted request head (request line + headers). Scrape requests
/// are a few hundred bytes; anything bigger is a client error.
const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// Binds `addr`, announces `http listening on ADDR` (tests scan for that
/// substring to learn the ephemeral port), and spawns the accept loop. The
/// loop exits when the shared shutdown flag is raised; join the returned
/// handle after raising it.
pub(crate) fn spawn(shared: Arc<Shared>, addr: &str) -> io::Result<thread::JoinHandle<()>> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    info!(LOG, "http listening on {local}");
    Ok(thread::spawn(move || accept_loop(&listener, &shared)))
}

/// Accepts until shutdown, serving each connection on its own thread —
/// scrapes are tiny, but one stalled client must not block the next one.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = Arc::clone(shared);
                workers.push(thread::spawn(move || {
                    if let Err(e) = serve_request(&shared, stream) {
                        warn!(LOG, "http connection {peer}: {e}");
                    }
                }));
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(e) => {
                warn!(LOG, "http accept error: {e}");
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Reads one request head and writes one response; the connection closes
/// either way.
fn serve_request(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let _span = trace::span("transport", "http");
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(()); // Client connected and hung up: not an error.
    }
    // Drain the header block so well-behaved clients see a clean close
    // (ignore errors: the response does not depend on the headers).
    let mut header = String::new();
    while matches!(reader.read_line(&mut header), Ok(n) if n > 2) {
        header.clear();
    }
    let mut writer = stream;
    let (status, content_type, body) = route(shared, &request_line);
    respond(&mut writer, status, content_type, &body)
}

/// Maps one request line to `(status line, content type, body)`.
fn route(shared: &Shared, request_line: &str) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None) if version.starts_with("HTTP/") => {
            (method, target, version)
        }
        _ => {
            return (
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "malformed request line\n".to_string(),
            )
        }
    };
    let _ = version;
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            format!("method {method} not allowed; this listener is GET-only\n"),
        );
    }
    // Scrape tools may append query strings (`/metrics?format=…`); the
    // listener ignores them.
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.lock().metrics_snapshot().to_prometheus(),
        ),
        "/stats" => {
            let stats = shared.lock().server_stats();
            match serde_json::to_string(&stats) {
                Ok(json) => ("200 OK", "application/json", json),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("serialize stats: {e}\n"),
                ),
            }
        }
        "/trace" => (
            "200 OK",
            "application/json",
            trace::drain().to_chrome_json(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no route {path}; try /healthz, /metrics, /stats, /trace\n"),
        ),
    }
}

/// Writes one complete HTTP/1.1 response and flushes.
fn respond(
    writer: &mut impl Write,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerCore;

    fn shared() -> Arc<Shared> {
        Arc::new(Shared {
            core: std::sync::Mutex::new(ServerCore::default()),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        })
    }

    #[test]
    fn routes_cover_the_documented_surface() {
        let shared = shared();
        let (status, _, body) = route(&shared, "GET /healthz HTTP/1.1\r\n");
        assert_eq!(status, "200 OK");
        assert_eq!(body, "ok\n");
        let (status, content_type, body) = route(&shared, "GET /metrics HTTP/1.1\r\n");
        assert_eq!(status, "200 OK");
        assert!(content_type.contains("version=0.0.4"));
        assert!(body.contains("pm_server_verb_latency_us"));
        let (status, content_type, body) = route(&shared, "GET /stats HTTP/1.1\r\n");
        assert_eq!(status, "200 OK");
        assert_eq!(content_type, "application/json");
        assert!(body.contains("\"sessions\":0"));
        let (status, _, body) = route(&shared, "GET /trace HTTP/1.1\r\n");
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn query_strings_are_ignored_in_routing() {
        let shared = shared();
        let (status, _, _) = route(&shared, "GET /healthz?probe=1 HTTP/1.1\r\n");
        assert_eq!(status, "200 OK");
    }

    #[test]
    fn bad_requests_get_4xx_without_panicking() {
        let shared = shared();
        let (status, _, _) = route(&shared, "not an http request\r\n");
        assert_eq!(status, "400 Bad Request");
        let (status, _, _) = route(&shared, "\r\n");
        assert_eq!(status, "400 Bad Request");
        let (status, _, _) = route(&shared, "GET /healthz\r\n");
        assert_eq!(status, "400 Bad Request", "missing HTTP version");
        let (status, _, _) = route(&shared, "POST /metrics HTTP/1.1\r\n");
        assert_eq!(status, "405 Method Not Allowed");
        let (status, _, body) = route(&shared, "GET /nope HTTP/1.1\r\n");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("/metrics"));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        respond(&mut out, "200 OK", "text/plain; charset=utf-8", "ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
