//! Durable session checkpoints on disk.
//!
//! A persist directory holds one `session-<id>.json` file per autosaved
//! session, each a [`SessionCheckpoint`] serialized as JSON. Writes are
//! atomic — the checkpoint is written to a temporary file in the same
//! directory, synced, and renamed over the target — so a crash at any
//! instant leaves either the previous complete checkpoint or the new one,
//! never a torn file. Files that are torn anyway (hand-edited, truncated by
//! a full disk, or plain garbage) surface as typed [`PersistError`]s from
//! the startup [`scan`](PersistDir::scan); the caller logs and skips them
//! and the server keeps serving.

use crate::protocol::SessionCheckpoint;
use pm_core::session::SessionId;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Why a checkpoint file could not be read or written.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem refused (permissions, missing directory, full disk).
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file exists but does not parse as a [`SessionCheckpoint`] —
    /// torn, truncated, or never a checkpoint at all.
    Malformed {
        /// The rejected file.
        path: PathBuf,
        /// What the parser objected to.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "checkpoint file {}: {source}", path.display())
            }
            PersistError::Malformed { path, detail } => {
                write!(f, "malformed checkpoint file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// One scanned checkpoint file: its path plus the parse outcome.
pub type ScanEntry = (PathBuf, Result<SessionCheckpoint, PersistError>);

/// A directory of durable session checkpoints.
#[derive(Debug)]
pub struct PersistDir {
    dir: PathBuf,
}

impl PersistDir {
    /// Opens (creating if needed) a persist directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<PersistDir, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| PersistError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(PersistDir { dir })
    }

    /// The directory being persisted to.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn file(&self, id: SessionId) -> PathBuf {
        self.dir.join(format!("session-{id}.json"))
    }

    /// Atomically writes `checkpoint` as `session-<id>.json`: temp file in
    /// the same directory, sync, rename. A crash mid-write never tears the
    /// previous checkpoint. Returns the file's size in bytes (telemetry
    /// feeds it to the checkpoint-size histogram).
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`PersistError::Io`].
    pub fn save(&self, id: SessionId, checkpoint: &SessionCheckpoint) -> Result<u64, PersistError> {
        let target = self.file(id);
        let temp = self.dir.join(format!(".session-{id}.json.tmp"));
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source| PersistError::Io { path, source }
        };
        let json = serde_json::to_string(checkpoint).expect("checkpoints serialize");
        let mut file = fs::File::create(&temp).map_err(io_err(&temp))?;
        file.write_all(json.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_all())
            .map_err(io_err(&temp))?;
        drop(file);
        fs::rename(&temp, &target).map_err(io_err(&target))?;
        Ok(json.len() as u64 + 1)
    }

    /// Removes the session's checkpoint file, if any (cancelled and evicted
    /// sessions must not resurrect on restart).
    pub fn delete(&self, id: SessionId) {
        let _ = fs::remove_file(self.file(id));
    }

    /// Scans the directory for `session-<id>.json` files in ascending id
    /// order. Each entry is the file path plus either its parsed checkpoint
    /// or the typed error explaining why it was rejected — corrupt files
    /// are reported, never fatal.
    ///
    /// # Errors
    ///
    /// Fails only if the directory itself cannot be listed.
    pub fn scan(&self) -> Result<Vec<ScanEntry>, PersistError> {
        let entries = fs::read_dir(&self.dir).map_err(|source| PersistError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut found: Vec<(SessionId, PathBuf)> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| PersistError::Io {
                path: self.dir.clone(),
                source,
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("session-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|id| id.parse::<SessionId>().ok())
            else {
                continue;
            };
            found.push((id, entry.path()));
        }
        found.sort_unstable_by_key(|(id, _)| *id);
        Ok(found
            .into_iter()
            .map(|(_, path)| {
                let parsed = PersistDir::read(&path);
                (path, parsed)
            })
            .collect())
    }

    fn read(path: &Path) -> Result<SessionCheckpoint, PersistError> {
        let text = fs::read_to_string(path).map_err(|source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        serde_json::from_str(text.trim()).map_err(|e| PersistError::Malformed {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_scenarios::{GeneratorSpec, ScenarioSpec};
    use std::env;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = env::temp_dir().join(format!("pm-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint(name: &str) -> SessionCheckpoint {
        SessionCheckpoint {
            spec: ScenarioSpec::new(name, GeneratorSpec::Hexagon { radius: 2 }),
            execution: pm_core::session::ExecutionCheckpoint {
                steps: 3,
                rounds: 2,
                algorithm: "dle+collect".to_string(),
                phase: None,
                rounds_in_phase: 0,
                total_rounds: 2,
                decided: 0,
                undecided: 7,
                finished: false,
                baseline: None,
            },
        }
    }

    #[test]
    fn save_scan_round_trips_in_id_order() {
        let persist = PersistDir::open(temp_dir("roundtrip")).unwrap();
        persist.save(10, &checkpoint("b")).unwrap();
        persist.save(2, &checkpoint("a")).unwrap();
        let scanned = persist.scan().unwrap();
        let names: Vec<String> = scanned
            .iter()
            .map(|(_, parsed)| parsed.as_ref().unwrap().spec.name.clone())
            .collect();
        assert_eq!(
            names,
            ["a", "b"],
            "ascending id order, ids sorted numerically"
        );
        persist.delete(2);
        assert_eq!(persist.scan().unwrap().len(), 1);
        fs::remove_dir_all(persist.path()).unwrap();
    }

    #[test]
    fn torn_and_garbage_files_surface_as_typed_errors() {
        let persist = PersistDir::open(temp_dir("torn")).unwrap();
        persist.save(1, &checkpoint("ok")).unwrap();
        let full = fs::read_to_string(persist.path().join("session-1.json")).unwrap();
        fs::write(
            persist.path().join("session-2.json"),
            &full[..full.len() / 2],
        )
        .unwrap();
        fs::write(persist.path().join("session-3.json"), b"not json at all").unwrap();
        fs::write(persist.path().join("unrelated.txt"), b"ignored").unwrap();
        let scanned = persist.scan().unwrap();
        assert_eq!(
            scanned.len(),
            3,
            "unrelated files are not checkpoint entries"
        );
        assert!(scanned[0].1.is_ok());
        for (path, parsed) in &scanned[1..] {
            match parsed {
                Err(PersistError::Malformed { detail, .. }) => {
                    assert!(!detail.is_empty(), "{}", path.display());
                }
                other => panic!("expected Malformed for {}, got {other:?}", path.display()),
            }
        }
        fs::remove_dir_all(persist.path()).unwrap();
    }
}
