//! The workspace CLI: corpus tooling plus the session server.
//!
//! ```text
//! pm-scenarios list   [--corpus FILE]
//! pm-scenarios suites [--corpus FILE]
//! pm-scenarios render <name>  [--corpus FILE]
//! pm-scenarios run <suite>    [--corpus FILE] [--threads N] [--out FILE]
//! pm-scenarios trace <name>   [--corpus FILE] [--json] [--profile]
//! pm-scenarios profile <name> [--corpus FILE] [--out FILE] [--folded FILE]
//! pm-scenarios serve  [--stdio | --tcp ADDR] [--http ADDR] [--slice N]
//!                     [--threads N] [--persist-dir DIR] [--autosave-ms N]
//!                     [--ttl-ms N] [--max-sessions N]
//! pm-scenarios client --script FILE [--threads N] [--persist-dir DIR] ...
//! pm-scenarios load   [--sessions N] [--clients N] [--max-sessions N]
//! pm-scenarios regen
//! ```
//!
//! `run` prints a human-readable summary to stderr and the `RunReport` JSON
//! array to stdout (or `--out FILE`). `trace` steps one scenario through
//! the resumable `Execution` handle, printing a status line per round (and
//! per perturbation event); with `--json` it emits one `ExecutionStatus`
//! JSON line per completed round — the exact shape the server's `watch`
//! verb streams — followed by the final `RunReport` JSON line. `serve`
//! speaks the line-delimited JSON protocol of `PROTOCOL.md` over
//! stdin/stdout (default) or TCP; `client` replays a `.jsonl` request
//! script against freshly spawned `serve --stdio` children (restarting them
//! at `!restart` directives) and prints the response transcript. `load`
//! spawns its own TCP server and floods it from concurrent client threads
//! — see `crates/pm-server/scripts/load_test.sh`. `regen` rewrites the
//! committed corpus and the smoke golden file from the built-in corpus (a
//! dev tool; a test pins the committed files to the code).
//!
//! `serve` durability knobs: `--persist-dir DIR` autosaves every session
//! checkpoint into DIR and recovers them on startup; `--autosave-ms N`
//! sets the housekeeping cadence; `--ttl-ms N` evicts sessions no request
//! has touched for N milliseconds; `--max-sessions N` rejects `submit` and
//! `restore` with the retryable `Busy` response once N sessions are live.
//!
//! Observability: every subcommand accepts `--log-level
//! error|warn|info|debug` (default `info`) and `--log-json` (JSON-lines
//! log records on stderr instead of human text). `trace --profile` times
//! each phase through the execution's profiler and prints a per-phase
//! table (with `--json`, one extra JSON line holding the `PhaseProfile`
//! array). `profile` runs one scenario under the span recorder and writes
//! a Chrome trace-event file (`--out`, default `<name>.trace.json`; load
//! in Perfetto or `chrome://tracing`) plus optional folded-stack lines for
//! flamegraph tooling (`--folded FILE`), and prints per-phase and
//! per-round summary tables. A running server exposes the full metric
//! registry via the protocol's `metrics` verb — JSON and Prometheus text
//! exposition from one snapshot; with `serve --http ADDR` the same
//! snapshot (plus `/healthz`, `/stats`, and the live trace as `/trace`) is
//! scrapeable over plain HTTP; see PROTOCOL.md.

use pm_amoebot::ascii::render_shape;
use pm_core::api::StepOutcome;
use pm_scenarios::corpus::{self, FAULTS, SMOKE};
use pm_scenarios::{
    report_json, run_suite, select, suite_tags, GeneratorSpec, ScenarioScript, ScenarioSpec,
};
use pm_server::{Request, Response, ServeOptions, ServerCore, ServerLimits};
use pm_telemetry::{info, logging, trace, Level};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    command: String,
    operand: Option<String>,
    corpus: Option<PathBuf>,
    out: Option<PathBuf>,
    script: Option<PathBuf>,
    folded: Option<PathBuf>,
    tcp: Option<String>,
    http: Option<String>,
    threads: usize,
    slice: u64,
    json: bool,
    profile: bool,
    log_level: Level,
    log_json: bool,
    persist_dir: Option<PathBuf>,
    autosave_ms: u64,
    ttl_ms: Option<u64>,
    max_sessions: Option<usize>,
    sessions: usize,
    clients: usize,
}

const USAGE: &str =
    "usage: pm-scenarios <list|suites|render <name>|run <suite>|trace <name>|profile <name>\
|serve|client|load|regen> \
                     [--corpus FILE] [--threads N] [--out FILE] [--json] [--profile] \
                     [--folded FILE] [--stdio] [--tcp ADDR] [--http ADDR] [--slice N] \
                     [--script FILE] \
                     [--persist-dir DIR] [--autosave-ms N] [--ttl-ms N] [--max-sessions N] \
                     [--sessions N] [--clients N] \
                     [--log-level error|warn|info|debug] [--log-json]";

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or(USAGE)?;
    let mut parsed = Args {
        command,
        operand: None,
        corpus: None,
        out: None,
        script: None,
        folded: None,
        tcp: None,
        http: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        slice: 64,
        json: false,
        profile: false,
        log_level: Level::Info,
        log_json: false,
        persist_dir: None,
        autosave_ms: 500,
        ttl_ms: None,
        max_sessions: None,
        sessions: 1000,
        clients: 32,
    };
    fn number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> Result<T, String> {
        value
            .ok_or(format!("{flag} needs a number"))?
            .parse()
            .map_err(|_| format!("{flag} needs a number"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => {
                parsed.corpus = Some(PathBuf::from(
                    args.next().ok_or("--corpus needs a file argument")?,
                ))
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(
                    args.next().ok_or("--out needs a file argument")?,
                ))
            }
            "--script" => {
                parsed.script = Some(PathBuf::from(
                    args.next().ok_or("--script needs a file argument")?,
                ))
            }
            "--folded" => {
                parsed.folded = Some(PathBuf::from(
                    args.next().ok_or("--folded needs a file argument")?,
                ))
            }
            "--tcp" => parsed.tcp = Some(args.next().ok_or("--tcp needs an address")?),
            "--http" => parsed.http = Some(args.next().ok_or("--http needs an address")?),
            // The default transport; accepted so invocations can be
            // explicit about it.
            "--stdio" => parsed.tcp = None,
            "--threads" => parsed.threads = number(args.next(), "--threads")?,
            "--slice" => parsed.slice = number(args.next(), "--slice")?,
            "--persist-dir" => {
                parsed.persist_dir = Some(PathBuf::from(
                    args.next().ok_or("--persist-dir needs a directory")?,
                ))
            }
            "--autosave-ms" => parsed.autosave_ms = number(args.next(), "--autosave-ms")?,
            "--ttl-ms" => parsed.ttl_ms = Some(number(args.next(), "--ttl-ms")?),
            "--max-sessions" => parsed.max_sessions = Some(number(args.next(), "--max-sessions")?),
            "--sessions" => parsed.sessions = number(args.next(), "--sessions")?,
            "--clients" => parsed.clients = number(args.next(), "--clients")?,
            "--json" => parsed.json = true,
            "--profile" => parsed.profile = true,
            "--log-level" => {
                let level = args.next().ok_or("--log-level needs a level")?;
                parsed.log_level =
                    Level::parse(&level).ok_or(format!("--log-level: unknown level `{level}`"))?;
            }
            "--log-json" => parsed.log_json = true,
            other if parsed.operand.is_none() && !other.starts_with("--") => {
                parsed.operand = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn load_corpus(args: &Args) -> Result<Vec<ScenarioSpec>, String> {
    match &args.corpus {
        Some(path) => corpus::load_file(path),
        None => corpus::load_embedded(),
    }
}

fn cmd_list(specs: &[ScenarioSpec]) {
    println!(
        "{:<32} {:<28} {:>6} {:<20} {:<18} {:>8} {:>7}",
        "name", "generator", "n", "algorithm", "scheduler", "perturb", "faults"
    );
    for spec in specs {
        println!(
            "{:<32} {:<28} {:>6} {:<20} {:<18} {:>8} {:>7}",
            spec.name,
            spec.generator.to_string(),
            spec.build_shape().len(),
            spec.algorithm.name(),
            spec.scheduler.name(),
            spec.perturbations.len(),
            spec.faults.processes.len(),
        );
    }
}

fn cmd_render(specs: &[ScenarioSpec], name: &str) -> Result<(), String> {
    let spec = specs
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("no scenario named `{name}` (try `pm-scenarios list`)"))?;
    let shape = spec.build_shape();
    println!(
        "{} — {} (n = {}, algorithm = {}, scheduler = {})",
        spec.name,
        spec.generator,
        shape.len(),
        spec.algorithm.name(),
        spec.scheduler.name(),
    );
    for p in &spec.perturbations {
        println!("perturbation: {p}");
    }
    for process in &spec.faults.processes {
        println!("fault: {process}");
    }
    println!("{}", render_shape(&shape));
    Ok(())
}

fn cmd_run(specs: &[ScenarioSpec], args: &Args, suite: &str) -> Result<(), String> {
    let selected = select(specs, suite);
    if selected.is_empty() {
        return Err(format!(
            "suite `{suite}` selects no scenarios (suites: {}, or a scenario name / `all`)",
            suite_tags(specs).join(", ")
        ));
    }
    let reports = run_suite(&selected, args.threads.max(1));
    eprintln!(
        "{:<32} {:>6} {:>8} {:>12} {:>9} {:>8} {:<8}",
        "scenario", "n", "rounds", "activations", "leaders", "perturb", "outcome"
    );
    let mut failures = 0usize;
    for r in &reports {
        let (rounds, activations, leaders, outcome) = match &r.report {
            Some(report) => (
                report.total_rounds.to_string(),
                report.activations.to_string(),
                report.leaders.to_string(),
                "ok".to_string(),
            ),
            None => {
                failures += 1;
                (
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    r.error.clone().unwrap_or_else(|| "error".into()),
                )
            }
        };
        eprintln!(
            "{:<32} {:>6} {:>8} {:>12} {:>9} {:>8} {:<8}",
            r.scenario, r.n, rounds, activations, leaders, r.perturbations, outcome
        );
    }
    eprintln!(
        "{} scenario(s), {} ok, {} error(s)",
        reports.len(),
        reports.len() - failures,
        failures
    );
    let json = report_json(&reports);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }
    // Error entries are legitimate data for assumption-violation scenarios,
    // so they do not affect the exit status; only smoke promises all-ok
    // (CI pins that via the golden diff).
    Ok(())
}

/// Steps one scenario round by round through the resumable `Execution`
/// handle, printing a status line per step — the caller-driven loop the
/// steppable API exists for, on the command line. With `json`, stdout
/// carries one `ExecutionStatus` JSON line per completed round (the shape
/// the server's `watch` verb streams) and the final `RunReport` JSON line;
/// the human framing moves to stderr.
fn cmd_trace(specs: &[ScenarioSpec], name: &str, json: bool, profile: bool) -> Result<(), String> {
    let spec = specs
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("no scenario named `{name}` (try `pm-scenarios list`)"))?;
    if spec.is_adversarial() && !spec.algorithm.supports_perturbations() {
        return Err(format!(
            "scenario `{name}` attaches an adversarial script to `{}`, which runs no \
             round-driven phase",
            spec.algorithm.name()
        ));
    }
    let shape = spec.build_shape();
    let header = format!(
        "tracing {} — {} (n = {}, algorithm = {}, scheduler = {}, {} perturbation event(s), \
         {} fault process(es))",
        spec.name,
        spec.generator,
        shape.len(),
        spec.algorithm.name(),
        spec.scheduler.name(),
        spec.perturbations.len(),
        spec.faults.processes.len(),
    );
    if json {
        eprintln!("{header}");
    } else {
        println!("{header}");
    }
    let mut scheduler = spec.scheduler.build();
    let mut execution = spec
        .algorithm
        .instance()
        .start(&shape, &mut *scheduler, &spec.options)
        .map_err(|e| format!("start: {e}"))?;
    if profile {
        execution.enable_profiling();
    }
    let mut script = ScenarioScript::for_spec(spec);
    let report = loop {
        // The caller owns the loop: fire due events and fault processes
        // against the live system, then pump one step.
        let fired_now = script.apply_due(&mut execution);
        if fired_now > 0 && !json {
            let status = execution.status();
            println!(
                "  !! {fired_now} adversarial event(s) fired before round {}; {} particle(s) remain",
                status.next_round.unwrap_or(status.rounds_in_phase),
                status.decided + status.undecided
            );
        }
        match execution
            .step_round()
            .map_err(|e| format!("execution failed: {e}"))?
        {
            StepOutcome::PhaseStarted { phase } => {
                if !json {
                    println!("phase {phase}: started");
                }
            }
            StepOutcome::RoundCompleted { phase, rounds } => {
                let status = execution.status();
                if json {
                    let line = serde_json::to_string(&status)
                        .map_err(|e| format!("serialize status: {e}"))?;
                    println!("{line}");
                } else {
                    println!(
                        "phase {phase}: round {rounds:>5}  decided {:>6}  undecided {:>6}  total rounds {:>6}",
                        status.decided, status.undecided, status.total_rounds
                    );
                }
            }
            StepOutcome::PhaseEnded { report } => {
                if !json {
                    println!(
                        "phase {}: ended after {} round(s), {} activation(s), {} move(s)",
                        report.name, report.rounds, report.activations, report.moves
                    );
                }
            }
            StepOutcome::Finished(report) => break report,
        }
    };
    if json {
        let line = serde_json::to_string(&report).map_err(|e| format!("serialize report: {e}"))?;
        println!("{line}");
        // The report line never carries the profile (telemetry is
        // out-of-band), so --profile appends it as its own JSON line.
        if profile {
            let line = serde_json::to_string(&report.profile)
                .map_err(|e| format!("serialize profile: {e}"))?;
            println!("{line}");
        }
        return Ok(());
    }
    if script.perturbations().fired() > 0 {
        println!(
            "perturbations: {} event(s) fired, {} particle(s) removed",
            script.perturbations().fired(),
            script.perturbations().removed()
        );
    }
    if script.faults().fired() > 0 {
        let faults = script.faults();
        println!(
            "faults: {} firing(s) — {} removed, {} added, {} corrupted, {} relocated",
            faults.fired(),
            faults.removed(),
            faults.added(),
            faults.corrupted(),
            faults.relocated()
        );
    }
    println!(
        "finished: {} leader(s) at {}, {} follower(s), {} undecided, {} total round(s), connected = {}",
        report.leaders,
        report.leader,
        report.followers,
        report.undecided,
        report.total_rounds,
        report.final_connected
    );
    println!(
        "report: n = {} -> {} surviving particle(s), peak memory {} bit(s)/particle",
        report.n,
        report.final_positions.len(),
        report.peak_memory_bits
    );
    if profile {
        println!(
            "profile: {:<12} {:>8} {:>8} {:>12} {:>8} {:>12}",
            "phase", "steps", "rounds", "activations", "moves", "wall µs"
        );
        for phase in &report.profile {
            println!(
                "profile: {:<12} {:>8} {:>8} {:>12} {:>8} {:>12}",
                phase.name,
                phase.steps,
                phase.rounds,
                phase.activations,
                phase.moves,
                phase.wall_nanos / 1_000
            );
        }
    }
    Ok(())
}

/// Runs one scenario under the span recorder and the phase profiler,
/// writes the drained trace as a Chrome trace-event file (plus optional
/// folded stacks), and prints per-phase and per-round summary tables. The
/// run is single-threaded and caller-driven, so the trace shows the full
/// session → phase → round hierarchy with adversarial firings as instant
/// events inside the phase that absorbed them.
fn cmd_profile(specs: &[ScenarioSpec], name: &str, args: &Args) -> Result<(), String> {
    let spec = specs
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("no scenario named `{name}` (try `pm-scenarios list`)"))?;
    if spec.is_adversarial() && !spec.algorithm.supports_perturbations() {
        return Err(format!(
            "scenario `{name}` attaches an adversarial script to `{}`, which runs no \
             round-driven phase",
            spec.algorithm.name()
        ));
    }
    if !trace::install(trace::DEFAULT_CAPACITY) {
        return Err("a trace recorder is already installed".to_string());
    }
    // Uninstall even on error — a stray recorder must not outlive the run.
    let result = profile_run(spec);
    let traced = trace::uninstall().unwrap_or_default();
    let report = result?;

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{name}.trace.json")));
    std::fs::write(&out, traced.to_chrome_json())
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!(
        "wrote {} ({} event(s), {} dropped) — load in Perfetto or chrome://tracing",
        out.display(),
        traced.events.len(),
        traced.dropped
    );
    if let Some(folded) = &args.folded {
        std::fs::write(folded, traced.to_folded())
            .map_err(|e| format!("write {}: {e}", folded.display()))?;
        eprintln!(
            "wrote {} (folded stacks for flamegraph tooling)",
            folded.display()
        );
    }

    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>8} {:>12}",
        "phase", "steps", "rounds", "activations", "moves", "wall µs"
    );
    for phase in &report.profile {
        println!(
            "{:<12} {:>8} {:>8} {:>12} {:>8} {:>12}",
            phase.name,
            phase.steps,
            phase.rounds,
            phase.activations,
            phase.moves,
            phase.wall_nanos / 1_000
        );
    }

    // Per-round critical path, from the trace's `round` spans (span_at
    // pushes Begin and End with one id, so pair them by id).
    let mut begun: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut rounds: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for event in traced.events.iter().filter(|e| e.cat == "round") {
        match event.kind {
            trace::EventKind::Begin => {
                begun.insert(event.id, event.ts_us);
            }
            trace::EventKind::End => {
                let Some(start) = begun.remove(&event.id) else {
                    continue;
                };
                let duration = event.ts_us.saturating_sub(start);
                let (count, total, max) = rounds.entry(event.name.to_string()).or_insert((0, 0, 0));
                *count += 1;
                *total += duration;
                *max = (*max).max(duration);
            }
            trace::EventKind::Instant => {}
        }
    }
    let grand_total: u64 = rounds.values().map(|(_, total, _)| *total).sum();
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "rounds", "count", "total µs", "mean µs", "max µs", "share %"
    );
    for (phase, (count, total, max)) in &rounds {
        println!(
            "{:<12} {:>8} {:>12} {:>10} {:>10} {:>7.1}%",
            phase,
            count,
            total,
            total / count.max(&1),
            max,
            100.0 * *total as f64 / grand_total.max(1) as f64
        );
    }
    Ok(())
}

/// The instrumented drive loop behind [`cmd_profile`]: session and phase
/// guard spans from the caller's side, round spans and phase-boundary
/// instants from `Execution::step_round` itself, adversarial firings from
/// the script.
fn profile_run(spec: &ScenarioSpec) -> Result<pm_core::api::RunReport, String> {
    let shape = spec.build_shape();
    let mut scheduler = spec.scheduler.build();
    let mut execution = spec
        .algorithm
        .instance()
        .start(&shape, &mut *scheduler, &spec.options)
        .map_err(|e| format!("start: {e}"))?;
    execution.enable_profiling();
    let mut script = ScenarioScript::for_spec(spec);
    let _session = trace::span("session", format!("session:{}", spec.name));
    let mut phase_span: Option<pm_telemetry::SpanGuard> = None;
    loop {
        script.apply_due(&mut execution);
        match execution
            .step_round()
            .map_err(|e| format!("execution failed: {e}"))?
        {
            StepOutcome::PhaseStarted { phase } => {
                // take() first: the previous guard must End before the new
                // phase Begins, or the spans would nest instead of chain.
                drop(phase_span.take());
                phase_span = Some(trace::span("phase", format!("phase:{phase}")));
            }
            StepOutcome::RoundCompleted { .. } => {}
            StepOutcome::PhaseEnded { .. } => drop(phase_span.take()),
            StepOutcome::Finished(report) => return Ok(report),
        }
    }
}

/// Serves the session protocol over stdin/stdout (default) or TCP, with
/// the durability and resource-bound knobs applied. With `--http`, the
/// observability listener rides alongside and the trace recorder, the
/// core's uptime clock and the scrape surfaces all share one epoch
/// `Instant`, so `/stats` uptime and `/trace` timestamps agree.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut core = ServerCore::new(args.slice.max(1), args.threads.max(1));
    core.set_limits(ServerLimits {
        max_sessions: args.max_sessions,
        idle_ttl: args.ttl_ms.map(Duration::from_millis),
    });
    core.set_autosave_interval(Duration::from_millis(args.autosave_ms.max(1)));
    if args.http.is_some() {
        let epoch = std::time::Instant::now();
        if !trace::install_at(trace::DEFAULT_CAPACITY, epoch) {
            return Err("a trace recorder is already installed".to_string());
        }
        core.set_epoch(epoch);
    }
    if let Some(dir) = &args.persist_dir {
        let (restored, rejected) = core.attach_persistence(dir.clone())?;
        info!(
            "pm_scenarios::serve",
            "recovered {restored} session(s) from {} ({rejected} rejected)",
            dir.display()
        );
    }
    let options = ServeOptions {
        http: args.http.as_deref(),
    };
    let served = match &args.tcp {
        Some(addr) => pm_server::serve_tcp_with(core, addr, options)
            .map(|_| ())
            .map_err(|e| format!("serve --tcp {addr}: {e}")),
        None => {
            pm_server::serve_stdio_with(core, options).map_err(|e| format!("serve --stdio: {e}"))
        }
    };
    let _ = trace::uninstall();
    served
}

/// The `serve --stdio` command line matching this invocation's knobs —
/// what `client` spawns (and respawns at `!restart`).
fn serve_command(args: &Args) -> Result<Vec<String>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locate own executable: {e}"))?;
    let mut command = vec![
        exe.display().to_string(),
        "serve".to_string(),
        "--stdio".to_string(),
        "--slice".to_string(),
        args.slice.to_string(),
        "--threads".to_string(),
        args.threads.to_string(),
        "--autosave-ms".to_string(),
        args.autosave_ms.to_string(),
    ];
    if let Some(dir) = &args.persist_dir {
        command.push("--persist-dir".to_string());
        command.push(dir.display().to_string());
    }
    if let Some(ttl) = args.ttl_ms {
        command.push("--ttl-ms".to_string());
        command.push(ttl.to_string());
    }
    if let Some(max) = args.max_sessions {
        command.push("--max-sessions".to_string());
        command.push(max.to_string());
    }
    command.push("--log-level".to_string());
    command.push(args.log_level.as_str().to_string());
    if args.log_json {
        command.push("--log-json".to_string());
    }
    Ok(command)
}

/// Replays a request script against `serve --stdio` child processes,
/// printing the response transcript to stdout.
fn cmd_client(args: &Args) -> Result<(), String> {
    let path = args
        .script
        .as_ref()
        .ok_or("client needs --script FILE (a .jsonl request script)")?;
    let script =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let command = serve_command(args)?;
    let stdout = std::io::stdout();
    pm_server::run_script(&command, &script, &mut stdout.lock())
}

/// One TCP protocol connection for the load generator.
struct LoadConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LoadConn {
    fn connect(addr: &str) -> Result<LoadConn, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(
            writer
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(LoadConn { reader, writer })
    }

    /// Sends one request and reads to its final response.
    fn request(&mut self, request: &Request) -> Result<Response, String> {
        let line = serde_json::to_string(request).map_err(|e| format!("serialize: {e}"))?;
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        loop {
            let mut raw = String::new();
            let read = self
                .reader
                .read_line(&mut raw)
                .map_err(|e| format!("receive: {e}"))?;
            if read == 0 {
                return Err("server closed the connection mid-request".to_string());
            }
            let response: Response = serde_json::from_str(raw.trim())
                .map_err(|e| format!("unparseable response `{}`: {e}", raw.trim()))?;
            if response.is_final() {
                return Ok(response);
            }
        }
    }

    /// Sends a request, backing off and retrying while the server answers
    /// with the retryable `Busy`.
    fn request_with_retry(&mut self, request: &Request) -> Result<Response, String> {
        for attempt in 1..=1000u32 {
            match self.request(request)? {
                Response::Busy { .. } => {
                    std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))))
                }
                response => return Ok(response),
            }
        }
        Err("server stayed busy through 1000 retries".to_string())
    }
}

/// Floods a freshly spawned TCP server with many small sessions from
/// concurrent client threads, asserting fairness (every session completes
/// with a unique leader) and bounded memory (each client cancels its
/// finished sessions, and the final `stats` verb confirms the live-session
/// count stayed within the budget). The budget deliberately sits below the
/// client count so the retryable `Busy` path is exercised under real
/// contention.
fn cmd_load(args: &Args) -> Result<(), String> {
    let sessions = args.sessions.max(1);
    let clients = args.clients.max(1);
    let budget = args.max_sessions.unwrap_or((clients / 2).max(2));
    let exe = std::env::current_exe().map_err(|e| format!("locate own executable: {e}"))?;
    let mut server = std::process::Command::new(&exe)
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--slice",
            &args.slice.to_string(),
            "--threads",
            &args.threads.to_string(),
            "--max-sessions",
            &budget.to_string(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn server: {e}"))?;
    let stderr = BufReader::new(server.stderr.take().expect("stderr was piped"));
    let mut addr = None;
    for line in stderr.lines() {
        let line = line.map_err(|e| format!("read server stderr: {e}"))?;
        // The announcement is a log line now, so match the substring
        // rather than the whole line.
        if let Some(at) = line.find("listening on ") {
            addr = Some(line[at + "listening on ".len()..].trim().to_string());
            break;
        }
    }
    let addr = addr.ok_or("server never announced its address")?;

    let completed = std::sync::atomic::AtomicUsize::new(0);
    let failures = std::sync::Mutex::new(Vec::new());
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let (addr, completed, failures) = (&addr, &completed, &failures);
            scope.spawn(move || {
                let run = || -> Result<usize, String> {
                    let mut conn = LoadConn::connect(addr)?;
                    let mut finished = 0;
                    // Client `c` owns sessions c, c+clients, c+2*clients, …
                    for index in (client..sessions).step_by(clients) {
                        let spec = ScenarioSpec::new(
                            format!("load-{index}"),
                            GeneratorSpec::Hexagon { radius: 2 },
                        );
                        let submitted = conn.request_with_retry(&Request::Submit { spec })?;
                        let Response::Submitted { session, .. } = submitted else {
                            return Err(format!(
                                "load-{index}: expected Submitted, got {submitted:?}"
                            ));
                        };
                        match conn.request(&Request::Run { session })? {
                            Response::Done { report, .. } if report.unique_leader() => {}
                            other => {
                                return Err(format!(
                                    "load-{index}: expected unique leader, got {other:?}"
                                ))
                            }
                        }
                        // Cancelling finished sessions is what keeps the
                        // server's live set (and memory) bounded.
                        match conn.request(&Request::Cancel { session })? {
                            Response::Cancelled { .. } => finished += 1,
                            other => return Err(format!("load-{index}: cancel got {other:?}")),
                        }
                    }
                    Ok(finished)
                };
                match run() {
                    Ok(finished) => {
                        completed.fetch_add(finished, std::sync::atomic::Ordering::SeqCst);
                    }
                    Err(error) => failures.lock().unwrap().push(error),
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let mut control = LoadConn::connect(&addr)?;
    let stats = match control.request(&Request::Stats)? {
        Response::Stats { stats } => stats,
        other => return Err(format!("expected Stats, got {other:?}")),
    };
    control.request(&Request::Shutdown)?;
    let status = server.wait().map_err(|e| format!("wait for server: {e}"))?;

    let failures = failures.into_inner().unwrap();
    let completed = completed.into_inner();
    eprintln!(
        "load: {completed}/{sessions} session(s) completed by {clients} client(s) in {:.2}s \
         ({:.0}/s); budget {budget}, live at end {}, sweeps {}, busy-retries exercised",
        elapsed.as_secs_f64(),
        completed as f64 / elapsed.as_secs_f64().max(0.001),
        stats.sessions,
        stats.sweeps,
    );
    if let Some(error) = failures.first() {
        return Err(format!(
            "{} client(s) failed; first: {error}",
            failures.len()
        ));
    }
    if completed != sessions {
        return Err(format!(
            "fairness violated: {completed}/{sessions} sessions completed"
        ));
    }
    if stats.sessions > budget {
        return Err(format!(
            "memory bound violated: {} live sessions exceed the budget {budget}",
            stats.sessions
        ));
    }
    if stats.bytes_read == 0 || stats.bytes_written == 0 {
        return Err(format!(
            "byte accounting broken: {} read / {} written after {completed} sessions",
            stats.bytes_read, stats.bytes_written
        ));
    }
    // The control connection that asked for the stats is still open.
    if stats.active_connections < 1 {
        return Err(format!(
            "connection accounting broken: {} active at stats time",
            stats.active_connections
        ));
    }
    if !status.success() {
        return Err(format!("server exited with {status}"));
    }
    Ok(())
}

/// Rewrites the committed corpus and smoke golden file from the built-in
/// corpus (paths resolved relative to the pm-scenarios crate, which owns
/// the corpus even though this binary lives in pm-server).
fn cmd_regen() -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../pm-scenarios");
    let entries = pm_scenarios::builtin_entries();
    let mut corpus_json =
        serde_json::to_string_pretty(&entries).map_err(|e| format!("serialize corpus: {e}"))?;
    corpus_json.push('\n');
    let corpus_path = root.join("corpus/scenarios.json");
    std::fs::write(&corpus_path, corpus_json)
        .map_err(|e| format!("write {}: {e}", corpus_path.display()))?;
    eprintln!("wrote {}", corpus_path.display());

    let corpus = pm_scenarios::builtin_corpus();
    for (suite, file) in [(SMOKE, "golden/smoke.json"), (FAULTS, "golden/faults.json")] {
        let selected = select(&corpus, suite);
        let golden = report_json(&run_suite(&selected, 1));
        let golden_path = root.join(file);
        if let Some(parent) = golden_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        std::fs::write(&golden_path, golden)
            .map_err(|e| format!("write {}: {e}", golden_path.display()))?;
        eprintln!("wrote {}", golden_path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    logging::init(args.log_level, args.log_json);
    let result = match args.command.as_str() {
        "regen" => cmd_regen(),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "load" => cmd_load(&args),
        command => match load_corpus(&args) {
            Err(e) => Err(e),
            Ok(specs) => match (command, args.operand.as_deref()) {
                ("list", _) => {
                    cmd_list(&specs);
                    Ok(())
                }
                ("suites", _) => {
                    for tag in suite_tags(&specs) {
                        println!("{tag}");
                    }
                    println!("all");
                    Ok(())
                }
                ("render", Some(name)) => cmd_render(&specs, name),
                ("render", None) => Err("render needs a scenario name".to_string()),
                ("run", Some(suite)) => cmd_run(&specs, &args, suite),
                ("run", None) => Err("run needs a suite name (try `smoke` or `all`)".to_string()),
                ("trace", Some(name)) => cmd_trace(&specs, name, args.json, args.profile),
                ("trace", None) => Err("trace needs a scenario name".to_string()),
                ("profile", Some(name)) => cmd_profile(&specs, name, &args),
                ("profile", None) => Err("profile needs a scenario name".to_string()),
                (other, _) => Err(format!("unknown command `{other}`\n{USAGE}")),
            },
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
