//! The multi-tenant election session server.
//!
//! Everything below the transport is the workspace's existing machinery —
//! owned steppable executions
//! ([`LeaderElection::start_owned`](pm_core::api::LeaderElection::start_owned)),
//! the cooperative [`SessionScheduler`](pm_core::session::SessionScheduler),
//! declarative [`ScenarioSpec`](pm_scenarios::ScenarioSpec)s and perturbation
//! scripts. This crate adds the wire:
//!
//! * [`protocol`] — the line-delimited JSON [`Request`]/[`Response`] verbs
//!   (`submit`, `status`, `watch`, `run`, `perturb`, `pause`, `resume`,
//!   `cancel`, `checkpoint`, `restore`, `sessions`, `stats`, `metrics`,
//!   `shutdown`), documented with examples in `PROTOCOL.md` at the
//!   repository root.
//! * [`server`] — [`ServerCore`]: the transport-agnostic request handler
//!   multiplexing every live session through one fair scheduler, so no
//!   session starves another while a request pumps. The core also owns the
//!   operational envelope: session budgets and idle-TTL eviction
//!   ([`ServerLimits`]), interval autosave with baseline re-anchoring, and
//!   crash recovery from a persist directory.
//! * [`persist`] — durable checkpoint files: atomic temp-file-plus-rename
//!   writes (never torn), a startup scan that reports corrupt files as
//!   typed errors instead of dying on them.
//! * [`transport`] — the stdio and TCP servers (std-only, fully offline).
//!   TCP serves every connection on its own thread over the shared core,
//!   with read timeouts, accept-error backoff, and graceful shutdown.
//! * [`http`] — an optional hand-rolled HTTP/1.1 GET-only sidecar
//!   ([`ServeOptions`]) so `curl` and Prometheus can scrape `/healthz`,
//!   `/metrics`, `/stats` and `/trace` without speaking the line protocol.
//! * [`telemetry`] — the shared [`pm_telemetry`] registry and its
//!   hot-path handles: per-verb latency histograms, sweep and checkpoint
//!   timings, byte and connection counters, and harvested per-phase
//!   election profiles, all scrapeable via the `metrics` verb.
//! * [`client`] — the scripted client behind `pm-scenarios client`:
//!   replays a `.jsonl` request script against server child processes,
//!   restarting them on demand to prove checkpoints survive process death.
//!   Retries requests the server rejects with the retryable `Busy`.
//!
//! The crate also owns the workspace CLI binary (`pm-scenarios`), which
//! gains `serve`, `client` and `load` subcommands next to the corpus
//! tooling.

pub mod client;
pub mod http;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod telemetry;
pub mod transport;

pub use client::run_script;
pub use persist::{PersistDir, PersistError};
pub use protocol::{Request, Response, ServerStats, SessionCheckpoint, SessionSummary};
pub use server::{ServerCore, ServerLimits};
pub use telemetry::ServerTelemetry;
pub use transport::{
    serve, serve_stdio, serve_stdio_with, serve_tcp, serve_tcp_with, ServeOptions,
};
