//! The multi-tenant election session server.
//!
//! Everything below the transport is the workspace's existing machinery —
//! owned steppable executions
//! ([`LeaderElection::start_owned`](pm_core::api::LeaderElection::start_owned)),
//! the cooperative [`SessionScheduler`](pm_core::session::SessionScheduler),
//! declarative [`ScenarioSpec`](pm_scenarios::ScenarioSpec)s and perturbation
//! scripts. This crate adds the wire:
//!
//! * [`protocol`] — the line-delimited JSON [`Request`]/[`Response`] verbs
//!   (`submit`, `status`, `watch`, `run`, `perturb`, `pause`, `resume`,
//!   `cancel`, `checkpoint`, `restore`, `sessions`, `shutdown`), documented
//!   with examples in `PROTOCOL.md` at the repository root.
//! * [`server`] — [`ServerCore`]: the transport-agnostic request handler
//!   multiplexing every live session through one fair scheduler, so no
//!   session starves another while a request pumps.
//! * [`transport`] — the stdio and TCP servers (std-only, fully offline).
//! * [`client`] — the scripted client behind `pm-scenarios client`:
//!   replays a `.jsonl` request script against server child processes,
//!   restarting them on demand to prove checkpoints survive process death.
//!
//! The crate also owns the workspace CLI binary (`pm-scenarios`), which
//! gains `serve` and `client` subcommands next to the corpus tooling.

pub mod client;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::run_script;
pub use protocol::{Request, Response, SessionCheckpoint, SessionSummary};
pub use server::ServerCore;
pub use transport::{serve, serve_stdio, serve_tcp};
