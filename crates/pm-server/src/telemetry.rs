//! The server's telemetry wiring: one process-wide [`Registry`] shared by
//! the core, the transports, and the persist layer, plus the named handles
//! each of them hammers on their hot paths.
//!
//! Telemetry is **out-of-band by contract**: nothing here feeds back into
//! scheduling, elections, or the wire protocol's deterministic payloads.
//! The only protocol surface is the `metrics` verb, which — like `stats` —
//! is documented as not byte-reproducible and stays out of golden-diffed
//! scripts. Handles are cheap `Arc`-backed atomics, so transports clone
//! them once per connection and record without taking the core lock.

use pm_core::api::PhaseProfile;
use pm_telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Microsecond buckets for request/sweep latencies: 50µs to ~10s.
const LATENCY_US_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

/// Microsecond buckets for durable-write latencies: disk syncs dominate,
/// so the range shifts up relative to [`LATENCY_US_BOUNDS`].
const WRITE_US_BOUNDS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 2_000_000,
];

/// Byte-size buckets for checkpoint files: 1 KiB to 16 MiB.
const BYTES_BOUNDS: &[u64] = &[
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
];

/// Round-count buckets for recovery histograms: 1 to ~4k rounds.
const ROUNDS_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 4_096];

/// Every verb name `pm_server_verb_latency_us` is labeled with, in protocol
/// order. Kept in one place so the smoke test and docs can enumerate them.
pub const VERBS: &[&str] = &[
    "submit",
    "status",
    "watch",
    "run",
    "perturb",
    "fault",
    "pause",
    "resume",
    "cancel",
    "checkpoint",
    "restore",
    "sessions",
    "stats",
    "metrics",
    "shutdown",
];

/// The shared telemetry bundle: the registry plus pre-registered handles
/// for every hot-path series. Clone the `Arc`, not the struct.
pub struct ServerTelemetry {
    registry: Registry,
    /// Request bytes read off client connections.
    pub bytes_read: Counter,
    /// Response bytes written to client connections.
    pub bytes_written: Counter,
    /// Connections currently open.
    pub active_connections: Gauge,
    /// Connections accepted over the process lifetime.
    pub connections_total: Counter,
    /// Listener `accept` failures (backed off, not fatal).
    pub accept_errors: Counter,
    /// Per-connection I/O failures (connection dropped, server lives on).
    pub connection_errors: Counter,
    /// Malformed request lines answered with a protocol error.
    pub malformed_requests: Counter,
    /// Wall time of one scheduler sweep, µs.
    pub sweep_duration_us: Histogram,
    /// Wall time of one durable checkpoint write, µs.
    pub checkpoint_write_us: Histogram,
    /// Serialized size of one durable checkpoint, bytes.
    pub checkpoint_bytes: Histogram,
    /// Autosave failures (logged and skipped).
    pub checkpoint_errors: Counter,
    /// Wall time of one housekeeping pass, µs.
    pub housekeeping_duration_us: Histogram,
    /// Fault-plan firings across finished fault-injected sessions.
    pub faults_fired_total: Counter,
    /// Rounds from the last fault firing to termination, per finished
    /// fault-injected session.
    pub recovery_rounds: Histogram,
    /// Fault-injected sessions that finished with a unique leader.
    pub recoveries_total: Counter,
    /// Fault-injected sessions that finished without a unique leader.
    pub recovery_failures_total: Counter,
    /// Trace events lost to full recorder rings — mirrored from the trace
    /// recorder's drop counter at snapshot time, so a `/metrics` scrape
    /// reveals when `/trace` is truncating.
    pub trace_dropped_events: Gauge,
}

impl ServerTelemetry {
    /// A fresh registry with every hot-path series pre-registered, so the
    /// first scrape already lists them (at zero) and the smoke test can
    /// assert their presence without traffic.
    pub fn new() -> Arc<ServerTelemetry> {
        let registry = Registry::new();
        for verb in VERBS {
            registry.histogram_with(
                "pm_server_verb_latency_us",
                &[("verb", verb)],
                LATENCY_US_BOUNDS,
            );
        }
        let telemetry = ServerTelemetry {
            bytes_read: registry.counter("pm_server_bytes_read_total"),
            bytes_written: registry.counter("pm_server_bytes_written_total"),
            active_connections: registry.gauge("pm_server_active_connections"),
            connections_total: registry.counter("pm_server_connections_total"),
            accept_errors: registry.counter("pm_server_accept_errors_total"),
            connection_errors: registry.counter("pm_server_connection_errors_total"),
            malformed_requests: registry.counter("pm_server_malformed_requests_total"),
            sweep_duration_us: registry.histogram("pm_server_sweep_duration_us", LATENCY_US_BOUNDS),
            checkpoint_write_us: registry
                .histogram("pm_server_checkpoint_write_us", WRITE_US_BOUNDS),
            checkpoint_bytes: registry.histogram("pm_server_checkpoint_bytes", BYTES_BOUNDS),
            checkpoint_errors: registry.counter("pm_server_checkpoint_errors_total"),
            housekeeping_duration_us: registry
                .histogram("pm_server_housekeeping_duration_us", LATENCY_US_BOUNDS),
            faults_fired_total: registry.counter("pm_election_faults_fired_total"),
            recovery_rounds: registry.histogram("pm_election_recovery_rounds", ROUNDS_BOUNDS),
            recoveries_total: registry.counter("pm_election_recoveries_total"),
            recovery_failures_total: registry.counter("pm_election_recovery_failures_total"),
            trace_dropped_events: registry.gauge("pm_trace_dropped_events"),
            registry,
        };
        Arc::new(telemetry)
    }

    /// The verb-latency histogram for one protocol verb (get-or-create, so
    /// unknown labels never panic).
    pub fn verb_latency(&self, verb: &str) -> Histogram {
        self.registry.histogram_with(
            "pm_server_verb_latency_us",
            &[("verb", verb)],
            LATENCY_US_BOUNDS,
        )
    }

    /// Records one served request against its verb's latency series.
    pub fn observe_verb(&self, verb: &str, elapsed: Duration) {
        self.verb_latency(verb).observe(as_micros(elapsed));
    }

    /// Folds one finished election's per-phase profile into the registry:
    /// wall time as `pm_election_phase_wall_us{phase=…}` plus monotone
    /// round/activation/move totals per phase. Call once per session — the
    /// core guards this with its harvested-session set.
    pub fn harvest_profile(&self, profile: &[PhaseProfile]) {
        for phase in profile {
            let labels = &[("phase", phase.name.as_str())];
            self.registry
                .histogram_with("pm_election_phase_wall_us", labels, LATENCY_US_BOUNDS)
                .observe(phase.wall_nanos / 1_000);
            self.registry
                .counter_with("pm_election_phase_rounds_total", labels)
                .add(phase.rounds);
            self.registry
                .counter_with("pm_election_phase_activations_total", labels)
                .add(phase.activations);
            self.registry
                .counter_with("pm_election_phase_moves_total", labels)
                .add(phase.moves);
        }
    }

    /// Folds one finished fault-injected session's recovery outcome into
    /// the registry: total firings, rounds-to-termination after the last
    /// firing, and whether a unique leader emerged. Call once per session
    /// (guarded by the core's harvested-session set), and only for sessions
    /// whose fault plan actually fired.
    pub fn harvest_recovery(&self, faults_fired: usize, recovery_rounds: u64, recovered: bool) {
        self.faults_fired_total
            .add(u64::try_from(faults_fired).unwrap_or(u64::MAX));
        self.recovery_rounds.observe(recovery_rounds);
        if recovered {
            self.recoveries_total.inc();
        } else {
            self.recovery_failures_total.inc();
        }
    }

    /// One consistent snapshot of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Saturating `Duration` → whole microseconds.
pub fn as_micros(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_verb_series_exists_before_any_traffic() {
        let telemetry = ServerTelemetry::new();
        let snapshot = telemetry.snapshot();
        let verbs: Vec<&str> = snapshot
            .histograms
            .iter()
            .filter(|h| h.name == "pm_server_verb_latency_us")
            .flat_map(|h| h.labels.iter())
            .filter(|l| l.key == "verb")
            .map(|l| l.value.as_str())
            .collect();
        for verb in VERBS {
            assert!(verbs.contains(verb), "missing verb series `{verb}`");
        }
    }

    #[test]
    fn harvesting_a_profile_creates_the_phase_series() {
        let telemetry = ServerTelemetry::new();
        telemetry.harvest_profile(&[PhaseProfile {
            name: "dle".to_string(),
            steps: 10,
            rounds: 7,
            activations: 40,
            moves: 3,
            wall_nanos: 5_000,
        }]);
        let snapshot = telemetry.snapshot();
        let wall = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "pm_election_phase_wall_us")
            .expect("phase wall series");
        assert_eq!(wall.count, 1);
        assert_eq!(wall.sum, 5);
        let rounds = snapshot
            .counters
            .iter()
            .find(|c| c.name == "pm_election_phase_rounds_total")
            .expect("phase rounds series");
        assert_eq!(rounds.value, 7);
    }

    #[test]
    fn recovery_series_exist_at_zero_and_accumulate_on_harvest() {
        let telemetry = ServerTelemetry::new();
        let snapshot = telemetry.snapshot();
        assert!(snapshot
            .counters
            .iter()
            .any(|c| c.name == "pm_election_faults_fired_total" && c.value == 0));
        assert!(snapshot
            .histograms
            .iter()
            .any(|h| h.name == "pm_election_recovery_rounds" && h.count == 0));

        telemetry.harvest_recovery(3, 12, true);
        telemetry.harvest_recovery(1, 40, false);
        let snapshot = telemetry.snapshot();
        assert_eq!(telemetry.faults_fired_total.get(), 4);
        assert_eq!(telemetry.recoveries_total.get(), 1);
        assert_eq!(telemetry.recovery_failures_total.get(), 1);
        let rounds = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "pm_election_recovery_rounds")
            .expect("recovery rounds series");
        assert_eq!(rounds.count, 2);
        assert_eq!(rounds.sum, 52);
    }
}
