//! Transports: the same [`ServerCore`] served over stdin/stdout or TCP.
//!
//! Both speak the identical line protocol — one JSON [`Request`] per input
//! line, one or more JSON [`Response`] lines per request, flushed after
//! every request so clients can stream. Malformed lines answer with an
//! `Error` response and the connection keeps serving; blank lines and
//! `#`-prefixed comment lines are ignored (scripts interleave them freely).

use crate::protocol::{Request, Response};
use crate::server::ServerCore;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};

/// Serves one connection: reads requests from `input` until EOF or a
/// `shutdown` verb, writing response lines to `output`. Returns `true` iff
/// the connection ended with `shutdown` (the caller should stop serving
/// entirely, not just this connection).
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader or writer.
pub fn serve(
    core: &mut ServerCore,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<bool> {
    let mut responses = Vec::new();
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        responses.clear();
        let shutdown = match serde_json::from_str::<Request>(line) {
            Ok(request) => core.handle(request, &mut responses),
            Err(e) => {
                responses.push(Response::Error {
                    message: format!("malformed request: {e}"),
                });
                false
            }
        };
        for response in &responses {
            let json = serde_json::to_string(response)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(output, "{json}")?;
        }
        output.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves the core over stdin/stdout until EOF or `shutdown`.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdio(core: &mut ServerCore) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(core, stdin.lock(), stdout.lock())?;
    Ok(())
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// connections sequentially until one of them sends `shutdown`. Sessions
/// persist across connections — a client may submit, disconnect, and a
/// later connection resumes the same sessions. The bound address is
/// announced on stderr as `listening on ADDR` (tests parse this to learn
/// the ephemeral port).
///
/// # Errors
///
/// Propagates bind and accept errors; per-connection I/O errors only drop
/// that connection.
pub fn serve_tcp(core: &mut ServerCore, addr: &str) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    eprintln!("listening on {local}");
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        // A dropped client mid-request is the client's problem, not the
        // server's: keep accepting.
        match serve(core, reader, &stream) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("connection error: {e}"),
        }
    }
    Ok(local)
}
