//! Transports: the same [`ServerCore`] served over stdin/stdout or TCP.
//!
//! Both speak the identical line protocol — one JSON [`Request`] per input
//! line, one or more JSON [`Response`] lines per request, flushed after
//! every request so clients can stream. Malformed lines answer with an
//! `Error` response and the connection keeps serving; blank lines and
//! `#`-prefixed comment lines are ignored (scripts interleave them freely).
//!
//! The TCP transport is concurrent: every accepted connection gets its own
//! thread, all of them serializing requests through one shared
//! `Mutex<ServerCore>` (the core itself pumps sessions fairly, so one
//! client's long `run` cannot starve another session — only delay the
//! other client's next response). Connections read with a short timeout so
//! slow or silent clients hold no lock and every thread notices shutdown
//! promptly; repeated `accept` failures back off exponentially instead of
//! spinning. Both transports run the core's housekeeping (autosave,
//! idle-TTL eviction) on its configured cadence from a background tick
//! thread, and once more right before exiting, so a graceful shutdown
//! always leaves current checkpoint files behind.

use crate::protocol::{Request, Response};
use crate::server::ServerCore;
use pm_telemetry::{error, info, trace, warn};
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The log target every transport-side line is tagged with.
const LOG: &str = "pm_server::transport";

/// How long a connection read blocks before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Accept-error backoff bounds: doubles from the floor to the ceiling.
const BACKOFF_FLOOR: Duration = Duration::from_millis(20);
const BACKOFF_CEILING: Duration = Duration::from_secs(1);

/// Serves one connection: reads requests from `input` until EOF or a
/// `shutdown` verb, writing response lines to `output`. Returns `true` iff
/// the connection ended with `shutdown` (the caller should stop serving
/// entirely, not just this connection).
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader or writer.
pub fn serve(
    core: &mut ServerCore,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<bool> {
    let mut responses = Vec::new();
    for line in input.lines() {
        let line = line?;
        if handle_line(core, &line, &mut responses, &mut output)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Parses and serves one request line, writing its responses. Returns
/// `true` iff the line was a `shutdown` verb. Blank and comment lines are
/// no-ops.
fn handle_line(
    core: &mut ServerCore,
    line: &str,
    responses: &mut Vec<Response>,
    output: &mut impl Write,
) -> io::Result<bool> {
    let telemetry = core.telemetry();
    telemetry.bytes_read.add(line.len() as u64);
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(false);
    }
    responses.clear();
    let shutdown = match serde_json::from_str::<Request>(line) {
        Ok(request) => core.handle(request, responses),
        Err(e) => {
            telemetry.malformed_requests.inc();
            responses.push(Response::Error {
                message: format!("malformed request: {e}"),
            });
            false
        }
    };
    for response in responses.iter() {
        let json = serde_json::to_string(response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        telemetry.bytes_written.add(json.len() as u64 + 1);
        writeln!(output, "{json}")?;
    }
    output.flush()?;
    Ok(shutdown)
}

/// The state every connection thread shares — protocol connections and the
/// HTTP observability listener alike.
pub(crate) struct Shared {
    pub(crate) core: Mutex<ServerCore>,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    fn new(core: ServerCore) -> Arc<Shared> {
        Arc::new(Shared {
            core: Mutex::new(core),
            shutdown: AtomicBool::new(false),
        })
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, ServerCore> {
        // A poisoned mutex means a handler panicked; the core's state is
        // still a valid set of sessions (handlers don't leave partial
        // state), so keep serving the remaining clients.
        self.core
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs one final housekeeping sweep so shutdown leaves current
    /// checkpoint files on disk.
    fn final_sweep(&self) {
        let mut core = self.lock();
        if core.wants_housekeeping() {
            core.housekeeping();
        }
    }

    /// Spawns the periodic housekeeping tick, if the core wants one.
    /// Returns the handle to join after the shutdown flag is raised.
    fn spawn_housekeeping(self: &Arc<Self>) -> Option<thread::JoinHandle<()>> {
        let interval = {
            let core = self.lock();
            core.wants_housekeeping().then(|| core.autosave_interval())
        }?;
        let shared = Arc::clone(self);
        Some(thread::spawn(move || {
            let mut due = Instant::now() + interval;
            while !shared.shutdown.load(Ordering::SeqCst) {
                thread::sleep(ACCEPT_POLL.min(interval));
                if Instant::now() >= due {
                    shared.lock().housekeeping();
                    due = Instant::now() + interval;
                }
            }
        }))
    }
}

/// Transport options beyond the protocol listener itself. The default
/// serves the protocol alone, exactly as before the options existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions<'a> {
    /// Bind the HTTP observability listener (`/healthz`, `/metrics`,
    /// `/stats`, `/trace`) on this address alongside the transport.
    pub http: Option<&'a str>,
}

/// Serves the core over stdin/stdout until EOF or `shutdown`, running
/// housekeeping (autosave, eviction) on the core's cadence in the
/// background and once more before returning.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdio(core: ServerCore) -> io::Result<()> {
    serve_stdio_with(core, ServeOptions::default())
}

/// [`serve_stdio`] with transport options (the HTTP observability
/// listener).
///
/// # Errors
///
/// Propagates I/O errors from the standard streams, and bind errors from
/// the HTTP listener.
pub fn serve_stdio_with(core: ServerCore, options: ServeOptions<'_>) -> io::Result<()> {
    let telemetry = core.telemetry();
    let shared = Shared::new(core);
    let http = options
        .http
        .map(|addr| crate::http::spawn(Arc::clone(&shared), addr))
        .transpose()?;
    let housekeeper = shared.spawn_housekeeping();
    // The stdio pipe counts as one connection for its whole lifetime, so
    // the same dashboards cover both transports.
    telemetry.connections_total.inc();
    telemetry.active_connections.add(1);
    let conn_span = trace::span("transport", "connection");
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut output = stdout.lock();
    let mut responses = Vec::new();
    let mut result = Ok(());
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        match handle_line(&mut shared.lock(), &line, &mut responses, &mut output) {
            Ok(false) => {}
            Ok(true) => break,
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    drop(conn_span);
    telemetry.active_connections.add(-1);
    shared.shutdown.store(true, Ordering::SeqCst);
    if let Some(housekeeper) = housekeeper {
        let _ = housekeeper.join();
    }
    if let Some(http) = http {
        let _ = http.join();
    }
    shared.final_sweep();
    result
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// connections concurrently — one thread per connection over the shared
/// core — until one of them sends `shutdown`. Sessions persist across
/// connections: a client may submit, disconnect, and a later connection
/// resumes the same sessions. The bound address is announced on stderr as
/// an info-level log line containing `listening on ADDR` (tests scan for
/// that substring to learn the ephemeral port).
///
/// Per-connection I/O errors are logged to stderr with the peer address
/// and drop only that connection; `accept` errors back off exponentially.
/// On shutdown the listener stops accepting, every in-flight connection
/// thread drains and joins, and a final housekeeping sweep persists
/// whatever the autosave cadence had not yet written.
///
/// # Errors
///
/// Propagates bind errors and listener configuration failures.
pub fn serve_tcp(core: ServerCore, addr: &str) -> io::Result<SocketAddr> {
    serve_tcp_with(core, addr, ServeOptions::default())
}

/// [`serve_tcp`] with transport options (the HTTP observability listener).
/// The HTTP listener announces its own bound address the same way, as an
/// info log line containing `http listening on ADDR`.
///
/// # Errors
///
/// Propagates bind errors (protocol or HTTP) and listener configuration
/// failures.
pub fn serve_tcp_with(
    core: ServerCore,
    addr: &str,
    options: ServeOptions<'_>,
) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    info!(LOG, "listening on {local}");

    let telemetry = core.telemetry();
    let shared = Shared::new(core);
    let http = options
        .http
        .map(|addr| crate::http::spawn(Arc::clone(&shared), addr))
        .transpose()?;
    let housekeeper = shared.spawn_housekeeping();
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut backoff = BACKOFF_FLOOR;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                backoff = BACKOFF_FLOOR;
                let shared = Arc::clone(&shared);
                let telemetry = Arc::clone(&telemetry);
                connections.push(thread::spawn(move || {
                    telemetry.connections_total.inc();
                    telemetry.active_connections.add(1);
                    let served = serve_connection(&shared, stream);
                    telemetry.active_connections.add(-1);
                    if let Err(e) = served {
                        // A dropped or misbehaving client is its own
                        // problem, not the server's: log and keep serving.
                        telemetry.connection_errors.inc();
                        warn!(LOG, "connection {peer}: {e}");
                    }
                }));
                connections.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(e) => {
                telemetry.accept_errors.inc();
                error!(LOG, "accept error: {e} (backing off {backoff:?})");
                thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEILING);
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(housekeeper) = housekeeper {
        let _ = housekeeper.join();
    }
    if let Some(http) = http {
        let _ = http.join();
    }
    shared.final_sweep();
    Ok(local)
}

/// Serves one TCP connection until EOF, error, or server shutdown. Reads
/// poll with a short timeout so a slow client never holds the core lock
/// and the thread notices shutdown raised elsewhere; a partial line
/// survives across polls until its newline arrives.
fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let _conn = trace::span("transport", "connection");
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut responses = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF: client hung up (possibly mid-line).
            Ok(_) => {
                let shutdown = handle_line(&mut shared.lock(), &line, &mut responses, &mut writer)?;
                line.clear();
                if shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
            // Timeout (reported as either kind, platform-dependent): the
            // partial line stays buffered; go check the shutdown flag.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_scenarios::{GeneratorSpec, ScenarioSpec};

    #[test]
    fn malformed_and_comment_lines_keep_the_connection_serving() {
        let mut core = ServerCore::default();
        let script = "# a comment\n\nnot json\n\"Sessions\"\n";
        let mut out = Vec::new();
        let shutdown = serve(&mut core, script.as_bytes(), &mut out).unwrap();
        assert!(!shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("malformed request"));
        assert!(lines[1].contains("sessions"));
    }

    #[test]
    fn shutdown_stops_the_stream_after_bye() {
        let mut core = ServerCore::default();
        let submit = serde_json::to_string(&Request::Submit {
            spec: ScenarioSpec::new("s", GeneratorSpec::Hexagon { radius: 2 }),
        })
        .unwrap();
        let script = format!("{submit}\n\"Shutdown\"\n\"Shutdown\"\n");
        let mut out = Vec::new();
        let shutdown = serve(&mut core, script.as_bytes(), &mut out).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "nothing served after Bye");
        assert!(lines[1].contains("Bye"));
    }
}
