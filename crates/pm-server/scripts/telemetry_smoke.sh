#!/usr/bin/env bash
# Telemetry smoke for pm-server.
#
# Boots the server on stdio, drives one full election through it, scrapes
# the `Metrics` verb, and validates the scrape:
#
#   * the JSON snapshot and the Prometheus rendering are both present;
#   * the Prometheus exposition parses — every non-comment line is
#     `name{labels} value` with a finite float value, and every histogram
#     carries `_sum`, `_count` and a cumulative `le="+Inf"` bucket;
#   * the required series exist: per-verb latency for the verbs served,
#     transport byte counters, sweep timing, and the per-phase election
#     telemetry harvested from the finished session.
#
# Telemetry is wall-clock dependent, so this cannot be a golden diff like
# the server smoke — structural validation is the contract instead.
#
# Usage: scripts/telemetry_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/../../.."
cargo build --release -p pm-server --bins

SPEC='{"Submit":{"spec":{"name":"telemetry-smoke","tags":[],"generator":{"Hexagon":{"radius":4}},"algorithm":"Pipeline","scheduler":{"SeededRandom":7},"options":{"assume_outer_boundary_known":false,"reconnect":true,"track_connectivity":false,"round_budget":null,"seed":7,"occupancy":"Dense"},"perturbations":[],"faults":{"seed":0,"reset":"None","processes":[]}}}}'

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
printf '%s\n' "$SPEC" '{"Run":{"session":1}}' '"Metrics"' '"Shutdown"' \
  | ./target/release/pm-scenarios serve --stdio --log-json > "$OUT"

python3 - "$OUT" <<'PYEOF'
import json, math, sys

lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
scrape = next(l["Metrics"] for l in lines if isinstance(l, dict) and "Metrics" in l)
snap, prom = scrape["metrics"], scrape["prometheus"]

names = (
    {c["name"] for c in snap["counters"]}
    | {g["name"] for g in snap["gauges"]}
    | {h["name"] for h in snap["histograms"]}
)
required = {
    "pm_server_verb_latency_us",
    "pm_server_bytes_read_total",
    "pm_server_bytes_written_total",
    "pm_server_active_connections",
    "pm_server_sweep_duration_us",
    "pm_election_phase_wall_us",
    "pm_election_phase_rounds_total",
    "pm_election_phase_activations_total",
}
missing = required - names
assert not missing, f"missing series: {sorted(missing)}"

served = {
    tuple(l.values())
    for h in snap["histograms"]
    if h["name"] == "pm_server_verb_latency_us" and h["count"] > 0
    for l in h["labels"]
}
assert ("verb", "submit") in served and ("verb", "run") in served, served

parsed = 0
for line in prom.splitlines():
    if not line or line.startswith("#"):
        continue
    name_labels, value = line.rsplit(" ", 1)
    assert math.isfinite(float(value)), f"bad value: {line}"
    name = name_labels.split("{", 1)[0]
    assert name and all(c.isalnum() or c in "_:" for c in name), f"bad name: {line}"
    parsed += 1
assert parsed > 0, "empty exposition"
for h in snap["histograms"]:
    for suffix in ("_sum", "_count"):
        assert h["name"] + suffix in prom, f"missing {h['name']}{suffix}"
assert 'le="+Inf"' in prom, "missing +Inf buckets"

print(f"TELEMETRY-SMOKE-OK ({len(names)} series, {parsed} exposition lines)")
PYEOF
