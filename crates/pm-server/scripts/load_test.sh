#!/usr/bin/env bash
# Load-tests pm-server over concurrent TCP connections.
#
# Spawns one `pm-scenarios serve --tcp` server (done internally by the
# `load` subcommand) and floods it with thousands of small election
# sessions from concurrent client threads. The run fails unless:
#
#   * fairness holds — every submitted session completes with a unique
#     leader (no client starves another's sessions);
#   * memory stays bounded — the server's session budget sits deliberately
#     below the client count, clients absorb the retryable `Busy`
#     rejection with backoff, and the final `stats` verb confirms the
#     live-session count never outgrew the budget.
#
# Usage: scripts/load_test.sh [SESSIONS] [CLIENTS]
set -euo pipefail

SESSIONS="${1:-2000}"
CLIENTS="${2:-32}"

cd "$(dirname "$0")/../../.."
cargo build --release -p pm-server --bins
exec ./target/release/pm-scenarios load --sessions "$SESSIONS" --clients "$CLIENTS"
