#!/usr/bin/env bash
# Trace smoke for the span recorder and the HTTP observability listener.
#
# Two halves, both structural (trace timestamps are wall-clock dependent,
# so — like the telemetry smoke — this cannot be a golden diff):
#
#   * boot the real server with `--tcp 127.0.0.1:0 --http 127.0.0.1:0`,
#     drive one fault-injected self-stabilising session over the line
#     protocol, then scrape `/healthz`, `/metrics` and `/trace` over plain
#     HTTP. The metrics scrape must carry the same required series as the
#     Metrics verb; the trace scrape must be structurally valid Chrome
#     trace-event JSON containing the `run` verb span, the per-session
#     scheduler slice, and the fault-firing instants.
#   * run `pm-scenarios profile` on the same scenario and validate the
#     written trace file: session → phase → round span nesting, balanced
#     B/E pairs, fault instants parented under the open phase.
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/../../.."
cargo build --release -p pm-server --bins
BIN=./target/release/pm-scenarios

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" serve --tcp 127.0.0.1:0 --http 127.0.0.1:0 2> "$WORK/stderr.log" &
SERVER_PID=$!

# Both listeners announce themselves on stderr; wait for the two lines.
for _ in $(seq 1 100); do
  if grep -q "http listening on " "$WORK/stderr.log" \
    && grep -v "http listening" "$WORK/stderr.log" | grep -q "listening on "; then
    break
  fi
  sleep 0.1
done
HTTP_ADDR="$(sed -n 's/.*http listening on \([0-9.:]*\).*/\1/p' "$WORK/stderr.log" | head -1)"
PROTO_ADDR="$(grep -v "http listening" "$WORK/stderr.log" \
  | sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' | head -1)"
echo "protocol on $PROTO_ADDR, http on $HTTP_ADDR"

python3 - "$PROTO_ADDR" "$HTTP_ADDR" <<'PYEOF'
import json, socket, sys

proto_addr, http_addr = sys.argv[1], sys.argv[2]

def protocol(request):
    host, port = proto_addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        reader = sock.makefile()
        while True:
            response = json.loads(reader.readline())
            # Streamed progress lines precede the final response.
            if not (isinstance(response, dict) and "Progress" in response):
                return response

def scrape(path):
    host, port = http_addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
        raw = b""
        while chunk := sock.recv(65536):
            raw += chunk
    head, body = raw.decode().split("\r\n\r\n", 1)
    return head.splitlines()[0], body

status, body = scrape("/healthz")
assert status == "HTTP/1.1 200 OK" and body == "ok\n", (status, body)

spec = {"Submit": {"spec": {
    "name": "trace-smoke", "tags": [],
    "generator": {"Hexagon": {"radius": 4}},
    "algorithm": "SelfStabMax", "scheduler": {"SeededRandom": 7},
    "options": {"assume_outer_boundary_known": False, "reconnect": True,
                "track_connectivity": False, "round_budget": None,
                "seed": 7, "occupancy": "Dense"},
    "perturbations": [],
    "faults": {"seed": 7, "reset": "None", "processes": [
        {"kind": "Removals", "start": 1, "period": 2, "until": 5, "count": 2}]},
}}}
session = protocol(spec)["Submitted"]["session"]
done = protocol({"Run": {"session": session}})
assert "Done" in done, done

status, metrics = scrape("/metrics")
assert status == "HTTP/1.1 200 OK", status
for series in ("pm_server_verb_latency_us", "pm_election_phase_rounds_total",
               "pm_server_sweep_duration_us", "pm_trace_dropped_events"):
    assert series in metrics, f"missing series {series}"

status, trace_json = scrape("/trace")
assert status == "HTTP/1.1 200 OK", status
trace = json.loads(trace_json)
events = trace["traceEvents"]
assert isinstance(trace["otherData"]["dropped"], int)
open_spans = 0
for event in events:
    assert event["ph"] in ("B", "E", "i"), event
    assert isinstance(event["ts"], int) and event["ts"] >= 0, event
    assert event["name"] and event["cat"], event
    open_spans += {"B": 1, "E": -1, "i": 0}[event["ph"]]
assert open_spans == 0, f"{open_spans} unbalanced span(s) in the scrape"
names = [e["name"] for e in events]
assert "run" in names, "no `run` verb span in the live trace"
assert any(n.startswith("session:") for n in names), "no scheduler slice span"
assert any(n.startswith("fault:") for n in names), "no fault-firing instant"

protocol("Shutdown")
print(f"TRACE-SMOKE-OK http ({len(events)} events scraped)")
PYEOF

wait "$SERVER_PID"
SERVER_PID=""

# Second half: the offline profiler on the committed corpus scenario.
"$BIN" profile faults-selfstab-periodic-removals \
  --out "$WORK/profile.trace.json" --folded "$WORK/profile.folded"

python3 - "$WORK/profile.trace.json" "$WORK/profile.folded" <<'PYEOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]

spans = {}  # id -> (name, cat, parent)
stack, orphans = [], 0
for event in events:
    if event["ph"] == "B":
        spans[event["args"]["span"]] = (
            event["name"], event["cat"], event["args"]["parent"])
        stack.append(event["args"]["span"])
    elif event["ph"] == "E":
        assert stack and stack[-1] == event["args"]["span"], "mis-nested E"
        stack.pop()
assert not stack, f"unclosed spans: {stack}"

# The span hierarchy the issue promises: session → phase → rounds, with
# the fault firings as instants parented under the open phase span.
sessions = [s for s, (n, c, _) in spans.items() if c == "session"]
assert len(sessions) == 1, f"expected one session span, got {sessions}"
phases = [s for s, (n, c, p) in spans.items()
          if c == "phase" and p == sessions[0]]
assert phases, "no phase span under the session"
rounds = [s for s, (n, c, p) in spans.items() if c == "round" and p in phases]
assert len(rounds) >= 6, f"expected >= 6 round spans, got {len(rounds)}"
faults = [e for e in events if e["ph"] == "i" and e["cat"] == "fault"]
assert len(faults) == 3, f"expected 3 fault firings, got {len(faults)}"
for fault in faults:
    assert fault["args"]["parent"] in phases, f"fault outside a phase: {fault}"
    assert fault["name"].startswith("fault:removals@r"), fault

folded = [line.rsplit(" ", 1) for line in open(sys.argv[2]) if line.strip()]
assert folded and all(int(weight) >= 0 for _, weight in folded)
assert any(path.split(";")[0].startswith("session:") for path, _ in folded)

print(f"TRACE-SMOKE-OK profile ({len(events)} events, "
      f"{len(rounds)} rounds, {len(faults)} fault firings)")
PYEOF
