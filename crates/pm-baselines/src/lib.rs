//! Baseline leader-election algorithms for the amoebot model.
//!
//! These are the comparison points of the paper's Table 1, implemented at the
//! fidelity needed to reproduce the table's *ordering* (who wins, by roughly
//! what factor, and under which assumptions):
//!
//! * [`erosion_le`] — the no-movement erosion family (Di Luna et al. \[22\],
//!   Gastineau et al. \[27\]): deterministic, per-activation, `O(n)` rounds,
//!   **requires a hole-free shape** (it stalls on shapes with holes, which is
//!   exactly why those papers assume simple connectivity).
//! * [`randomized_boundary`] — the randomized boundary-election family
//!   (Derakhshandeh et al. \[19\], Daymude et al. \[10, 11\]): coin-flip
//!   tournament over the outer boundary, `O(L_out + D)` rounds with high
//!   probability, handles holes, but is randomized.
//! * [`quadratic_boundary`] — the unpipelined deterministic boundary
//!   election (Bazzi–Briones \[3\] style): deterministic, handles holes, elects
//!   up to six leaders, but pays `O(|s|·|s1|)` per segment comparison and is
//!   therefore quadratic overall.
//! * [`self_stab`] — the self-stabilising family (Chalopin–Das–Kokkou,
//!   arXiv 2408.08775): deterministic, handles holes, never moves, and —
//!   uniquely among the contenders — recovers a unique leader from arbitrary
//!   memory corruption without a global reset.
//!
//! Every baseline implements the unified
//! [`LeaderElection`](pm_core::api::LeaderElection) trait and returns the
//! same [`RunReport`](pm_core::api::RunReport) as the paper pipeline, so the
//! analysis crate tabulates all contenders through one `&dyn LeaderElection`
//! loop (or ships them to the thread-sharded
//! [`BatchRunner`](pm_core::batch::BatchRunner)):
//!
//! ```
//! use pm_baselines::{ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary};
//! use pm_core::api::{LeaderElection, RunOptions};
//! use pm_amoebot::scheduler::RoundRobin;
//! use pm_grid::builder::hexagon;
//!
//! let shape = hexagon(3);
//! let algorithms: [&dyn LeaderElection; 3] =
//!     [&ErosionLeaderElection, &RandomizedBoundary, &QuadraticBoundary];
//! for algorithm in algorithms {
//!     let report = algorithm
//!         .elect(&shape, &mut RoundRobin, &RunOptions::default())
//!         .expect("hole-free shape");
//!     assert!(report.leaders >= 1);
//! }
//! ```

pub mod erosion_le;
pub mod quadratic_boundary;
pub mod randomized_boundary;
pub mod self_stab;

pub use erosion_le::{ErosionLeaderElection, ErosionMemory, EROSION_MEMORY_BITS};
pub use quadratic_boundary::{QuadraticBoundary, QUADRATIC_BOUNDARY_MEMORY_BITS};
pub use randomized_boundary::{RandomizedBoundary, RANDOMIZED_BOUNDARY_MEMORY_BITS};
pub use self_stab::{SelfStabMaxElection, SelfStabMemory, SELF_STAB_MEMORY_BITS};

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_core::api::{LeaderElection, RunOptions};
    use pm_grid::builder::{annulus, hexagon};

    #[test]
    fn all_baselines_run_through_the_trait_object() {
        let algorithms: [&dyn LeaderElection; 4] = [
            &ErosionLeaderElection,
            &RandomizedBoundary,
            &QuadraticBoundary,
            &SelfStabMaxElection,
        ];
        let names: Vec<&str> = algorithms.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "erosion-le",
                "randomized-boundary",
                "quadratic-boundary",
                "self-stab-max"
            ]
        );
        for algorithm in algorithms {
            let report = algorithm
                .elect(&hexagon(3), &mut RoundRobin, &RunOptions::default())
                .unwrap();
            assert_eq!(report.algorithm, algorithm.name());
            assert!(report.rounds_consistent());
            assert_eq!(report.n, hexagon(3).len());
        }
    }

    #[test]
    fn hole_tolerance_matches_table1() {
        let holey = annulus(4, 1);
        let mut rr = RoundRobin;
        assert!(ErosionLeaderElection
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_err());
        assert!(RandomizedBoundary
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_ok());
        assert!(QuadraticBoundary
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_ok());
        assert!(SelfStabMaxElection
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_ok());
    }

    #[test]
    fn baselines_run_through_the_batch_runner() {
        use pm_core::batch::{BatchRunner, BatchScenario, SchedulerSpec};
        let scenarios: Vec<BatchScenario> = (0..4)
            .map(|i| {
                BatchScenario::new(format!("hexagon-{i}"), hexagon(3))
                    .scheduler(SchedulerSpec::SeededRandom(i))
            })
            .collect();
        let results = BatchRunner::with_threads(2).run(&ErosionLeaderElection, scenarios);
        assert_eq!(results.len(), 4);
        for result in results {
            assert_eq!(result.unwrap().leaders, 1);
        }
    }
}
