//! Baseline leader-election algorithms for the amoebot model.
//!
//! These are the comparison points of the paper's Table 1, implemented at the
//! fidelity needed to reproduce the table's *ordering* (who wins, by roughly
//! what factor, and under which assumptions):
//!
//! * [`erosion_le`] — the no-movement erosion family (Di Luna et al. [22],
//!   Gastineau et al. [27]): deterministic, per-activation, `O(n)` rounds,
//!   **requires a hole-free shape** (it stalls on shapes with holes, which is
//!   exactly why those papers assume simple connectivity).
//! * [`randomized_boundary`] — the randomized boundary-election family
//!   (Derakhshandeh et al. [19], Daymude et al. [10, 11]): coin-flip
//!   tournament over the outer boundary, `O(L_out + D)` rounds with high
//!   probability, handles holes, but is randomized.
//! * [`quadratic_boundary`] — the unpipelined deterministic boundary
//!   election (Bazzi–Briones [3] style): deterministic, handles holes, elects
//!   up to six leaders, but pays `O(|s|·|s1|)` per segment comparison and is
//!   therefore quadratic overall.
//!
//! Every baseline implements the unified
//! [`LeaderElection`](pm_core::api::LeaderElection) trait and returns the
//! same [`RunReport`](pm_core::api::RunReport) as the paper pipeline, so the
//! analysis crate tabulates all contenders through one `&dyn LeaderElection`
//! loop:
//!
//! ```
//! use pm_baselines::{ErosionLeaderElection, QuadraticBoundary, RandomizedBoundary};
//! use pm_core::api::{LeaderElection, RunOptions};
//! use pm_amoebot::scheduler::RoundRobin;
//! use pm_grid::builder::hexagon;
//!
//! let shape = hexagon(3);
//! let algorithms: [&dyn LeaderElection; 3] =
//!     [&ErosionLeaderElection, &RandomizedBoundary, &QuadraticBoundary];
//! for algorithm in algorithms {
//!     let report = algorithm
//!         .elect(&shape, &mut RoundRobin, &RunOptions::default())
//!         .expect("hole-free shape");
//!     assert!(report.leaders >= 1);
//! }
//! ```
//!
//! The pre-0.2 free functions (`run_erosion_le`, …) remain as deprecated
//! shims returning the old [`BaselineOutcome`].

pub mod erosion_le;
pub mod quadratic_boundary;
pub mod randomized_boundary;

use pm_core::api::ElectionError;
use pm_grid::Point;
use serde::{Deserialize, Serialize};

pub use erosion_le::{ErosionLeaderElection, ErosionMemory, EROSION_MEMORY_BITS};
pub use quadratic_boundary::{QuadraticBoundary, QUADRATIC_BOUNDARY_MEMORY_BITS};
pub use randomized_boundary::{RandomizedBoundary, RANDOMIZED_BOUNDARY_MEMORY_BITS};

#[allow(deprecated)]
pub use erosion_le::run_erosion_le;
#[allow(deprecated)]
pub use quadratic_boundary::run_quadratic_boundary;
#[allow(deprecated)]
pub use randomized_boundary::run_randomized_boundary;

/// The uniform result type of the **deprecated** baseline shims; new code
/// receives a [`RunReport`](pm_core::api::RunReport) instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// A short identifier of the algorithm (used in tables).
    pub algorithm: &'static str,
    /// Rounds until termination.
    pub rounds: u64,
    /// Number of leaders elected (1 except for the multi-leader baselines).
    pub leaders: usize,
    /// A representative leader position, if any.
    pub leader: Option<Point>,
}

/// Why a baseline failed on a given instance (error type of the deprecated
/// shims; the unified API reports
/// [`ElectionError`](pm_core::api::ElectionError)).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineError {
    /// The algorithm made no progress (e.g. erosion on a shape with holes).
    Stuck {
        /// Rounds executed before declaring the run stuck.
        after_rounds: u64,
    },
    /// The initial configuration is not supported (empty or disconnected).
    InvalidInput(&'static str),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Stuck { after_rounds } => {
                write!(f, "baseline made no progress after {after_rounds} rounds")
            }
            BaselineError::InvalidInput(why) => write!(f, "invalid input: {why}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Maps a unified-API error onto the legacy [`BaselineError`] (used by the
/// deprecated shims).
pub(crate) fn baseline_error_from(e: ElectionError) -> BaselineError {
    match e {
        ElectionError::Stuck { after_rounds } => BaselineError::Stuck { after_rounds },
        ElectionError::InvalidInitialConfiguration(why) => BaselineError::InvalidInput(why),
        // The closed-form baselines never hit a runner budget; treat a
        // hypothetical one as a stall.
        ElectionError::Run(_) => BaselineError::Stuck { after_rounds: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_core::api::{LeaderElection, RunOptions};
    use pm_grid::builder::{annulus, hexagon};

    #[test]
    fn all_baselines_run_through_the_trait_object() {
        let algorithms: [&dyn LeaderElection; 3] = [
            &ErosionLeaderElection,
            &RandomizedBoundary,
            &QuadraticBoundary,
        ];
        let names: Vec<&str> = algorithms.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            ["erosion-le", "randomized-boundary", "quadratic-boundary"]
        );
        for algorithm in algorithms {
            let report = algorithm
                .elect(&hexagon(3), &mut RoundRobin, &RunOptions::default())
                .unwrap();
            assert_eq!(report.algorithm, algorithm.name());
            assert!(report.rounds_consistent());
            assert_eq!(report.n, hexagon(3).len());
        }
    }

    #[test]
    fn hole_tolerance_matches_table1() {
        let holey = annulus(4, 1);
        let mut rr = RoundRobin;
        assert!(ErosionLeaderElection
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_err());
        assert!(RandomizedBoundary
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_ok());
        assert!(QuadraticBoundary
            .elect(&holey, &mut rr, &RunOptions::default())
            .is_ok());
    }

    #[test]
    fn baseline_error_mapping_is_faithful() {
        assert_eq!(
            baseline_error_from(ElectionError::Stuck { after_rounds: 4 }),
            BaselineError::Stuck { after_rounds: 4 }
        );
        assert_eq!(
            baseline_error_from(ElectionError::InvalidInitialConfiguration("empty shape")),
            BaselineError::InvalidInput("empty shape")
        );
    }
}
