//! Baseline leader-election algorithms for the amoebot model.
//!
//! These are the comparison points of the paper's Table 1, implemented at the
//! fidelity needed to reproduce the table's *ordering* (who wins, by roughly
//! what factor, and under which assumptions):
//!
//! * [`erosion_le`] — the no-movement erosion family (Di Luna et al. [22],
//!   Gastineau et al. [27]): deterministic, per-activation, `O(n)` rounds,
//!   **requires a hole-free shape** (it stalls on shapes with holes, which is
//!   exactly why those papers assume simple connectivity).
//! * [`randomized_boundary`] — the randomized boundary-election family
//!   (Derakhshandeh et al. [19], Daymude et al. [10, 11]): coin-flip
//!   tournament over the outer boundary, `O(L_out + D)` rounds with high
//!   probability, handles holes, but is randomized.
//! * [`quadratic_boundary`] — the unpipelined deterministic boundary
//!   election (Bazzi–Briones [3] style): deterministic, handles holes, elects
//!   up to six leaders, but pays `O(|s|·|s1|)` per segment comparison and is
//!   therefore quadratic overall.
//!
//! Each baseline returns a [`BaselineOutcome`] so the analysis crate can
//! tabulate them next to the paper's algorithm.

pub mod erosion_le;
pub mod quadratic_boundary;
pub mod randomized_boundary;

use pm_grid::Point;
use serde::{Deserialize, Serialize};

pub use erosion_le::{run_erosion_le, ErosionLeaderElection, ErosionMemory};
pub use quadratic_boundary::run_quadratic_boundary;
pub use randomized_boundary::run_randomized_boundary;

/// The uniform result type of all baselines.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// A short identifier of the algorithm (used in tables).
    pub algorithm: &'static str,
    /// Rounds until termination.
    pub rounds: u64,
    /// Number of leaders elected (1 except for the multi-leader baselines).
    pub leaders: usize,
    /// A representative leader position, if any.
    pub leader: Option<Point>,
}

/// Why a baseline failed on a given instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineError {
    /// The algorithm made no progress (e.g. erosion on a shape with holes).
    Stuck {
        /// Rounds executed before declaring the run stuck.
        after_rounds: u64,
    },
    /// The initial configuration is not supported (empty or disconnected).
    InvalidInput(&'static str),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Stuck { after_rounds } => {
                write!(f, "baseline made no progress after {after_rounds} rounds")
            }
            BaselineError::InvalidInput(why) => write!(f, "invalid input: {why}"),
        }
    }
}

impl std::error::Error for BaselineError {}
