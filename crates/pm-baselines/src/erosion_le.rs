//! The no-movement erosion baseline (the Di Luna et al. [22] / Gastineau et
//! al. [27] family).
//!
//! Candidates erode themselves from the *particle shape* (not the area):
//! a contracted, undecided particle whose undecided neighbourhood makes it a
//! strictly convex erodable point of the remaining candidate set becomes a
//! follower; the last candidate becomes the leader. No particle ever moves.
//!
//! On simply-connected shapes this elects a unique leader in `O(n)` rounds
//! (each round erodes at least the convex corners of the candidate set, but a
//! snake-like shape erodes only a constant number of particles per round).
//! On shapes with holes the candidate set can never pierce the hole and the
//! erosion stalls — which is exactly why this family of algorithms assumes
//! hole-free initial shapes.

use crate::{BaselineError, BaselineOutcome};
use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler};
use pm_amoebot::system::ParticleSystem;
use pm_core::dle::Status;
use pm_grid::{local_sce, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};

/// Memory of a particle running the erosion baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErosionMemory {
    /// The election output.
    pub status: Status,
}

/// The erosion-only leader-election algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErosionLeaderElection;

impl Algorithm for ErosionLeaderElection {
    type Memory = ErosionMemory;

    fn init(&self, _ctx: &InitContext) -> ErosionMemory {
        ErosionMemory {
            status: Status::Undecided,
        }
    }

    fn activate(&self, ctx: &mut ActivationContext<'_, ErosionMemory>) {
        let status = ctx.memory().status;
        if status != Status::Undecided {
            // Terminate once the whole neighbourhood has decided.
            let all_decided = ctx
                .neighbors()
                .into_iter()
                .all(|q| ctx.neighbor_memory(q).status != Status::Undecided);
            if all_decided {
                ctx.terminate();
            }
            return;
        }

        // Build the candidate mask: neighbours that are still undecided.
        let mut candidate = [false; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            if let Some(q) = ctx.neighbor_at_head(*d) {
                candidate[i] = ctx.neighbor_memory(q).status == Status::Undecided;
            }
        }

        if candidate.iter().all(|c| !c) {
            // Last remaining candidate in its neighbourhood: on a
            // simply-connected candidate set this means it is the last
            // candidate overall.
            ctx.memory_mut().status = Status::Leader;
        } else if local_sce(&candidate) {
            ctx.memory_mut().status = Status::Follower;
        }
    }
}

/// Runs the erosion baseline.
///
/// # Errors
///
/// Returns [`BaselineError::Stuck`] when the erosion makes no progress within
/// the round budget — this reliably happens on shapes with holes — and
/// [`BaselineError::InvalidInput`] for empty or disconnected shapes.
pub fn run_erosion_le<S: Scheduler>(
    shape: &Shape,
    scheduler: S,
) -> Result<BaselineOutcome, BaselineError> {
    if shape.is_empty() {
        return Err(BaselineError::InvalidInput("empty shape"));
    }
    if !shape.is_connected() {
        return Err(BaselineError::InvalidInput("shape must be connected"));
    }
    let system = ParticleSystem::from_shape(shape, &ErosionLeaderElection);
    let mut runner = Runner::new(system, ErosionLeaderElection, scheduler);
    let budget = 8 * (shape.len() as u64 + 8);
    match runner.run(budget) {
        Ok(stats) => {
            let system = runner.into_system();
            let mut leaders = 0;
            let mut leader = None;
            for (_, p) in system.iter() {
                if p.memory().status == Status::Leader {
                    leaders += 1;
                    leader = Some(p.head());
                }
            }
            Ok(BaselineOutcome {
                algorithm: "erosion-le",
                rounds: stats.rounds,
                leaders,
                leader,
            })
        }
        Err(RunError::RoundLimitExceeded { limit }) => {
            Err(BaselineError::Stuck {
                after_rounds: limit,
            })
        }
        Err(RunError::EmptySystem) => Err(BaselineError::InvalidInput("empty shape")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, comb, hexagon, line, spiral};

    #[test]
    fn elects_unique_leader_on_simply_connected_shapes() {
        for shape in [hexagon(3), line(12), comb(4, 3), spiral(40)] {
            let outcome = run_erosion_le(&shape, RoundRobin).unwrap();
            assert_eq!(outcome.leaders, 1, "shape {shape:?}");
            assert!(outcome.leader.is_some());
            assert_eq!(outcome.algorithm, "erosion-le");
        }
    }

    #[test]
    fn stalls_on_shapes_with_holes() {
        let result = run_erosion_le(&annulus(4, 1), RoundRobin);
        assert!(matches!(result, Err(BaselineError::Stuck { .. })));
    }

    #[test]
    fn random_scheduler_also_elects_one_leader() {
        for seed in 0..3 {
            let outcome = run_erosion_le(&hexagon(4), SeededRandom::new(seed)).unwrap();
            assert_eq!(outcome.leaders, 1);
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            run_erosion_le(&Shape::new(), RoundRobin),
            Err(BaselineError::InvalidInput(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(pm_grid::Point::new(40, 0));
        assert!(matches!(
            run_erosion_le(&disconnected, RoundRobin),
            Err(BaselineError::InvalidInput(_))
        ));
    }

    #[test]
    fn line_takes_linearly_many_rounds_under_random_schedules() {
        // A line of n particles erodes from its two candidate endpoints only.
        // Under a scheduler aligned with the line (plain round robin) a whole
        // prefix can cascade within one asynchronous round, but under random
        // activation orders the expected progress per round is constant, so
        // the round count grows linearly in n.
        let avg = |n: u32| -> f64 {
            (0..5u64)
                .map(|s| {
                    run_erosion_le(&line(n), SeededRandom::new(s)).unwrap().rounds as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let r16 = avg(16);
        let r64 = avg(64);
        assert!(
            r64 >= 2.0 * r16,
            "expected roughly linear growth: {r16} vs {r64}"
        );
    }
}
