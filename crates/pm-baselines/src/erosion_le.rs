//! The no-movement erosion baseline (the Di Luna et al. [22] / Gastineau et
//! al. [27] family).
//!
//! Candidates erode themselves from the *particle shape* (not the area):
//! a contracted, undecided particle whose undecided neighbourhood makes it a
//! strictly convex erodable point of the remaining candidate set becomes a
//! follower; the last candidate becomes the leader. No particle ever moves.
//!
//! On simply-connected shapes this elects a unique leader in `O(n)` rounds
//! (each round erodes at least the convex corners of the candidate set, but a
//! snake-like shape erodes only a constant number of particles per round).
//! On shapes with holes the candidate set can never pierce the hole and the
//! erosion stalls — which is exactly why this family of algorithms assumes
//! hole-free initial shapes. Through the unified API the stall surfaces as
//! [`ElectionError::Stuck`].

use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler};
use pm_amoebot::system::ParticleSystem;
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, LeaderElection,
    PhaseReport, RunObserver, RunOptions, RunReport,
};
use pm_core::dle::Status;
use pm_grid::{local_sce, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};

/// Per-particle memory of the erosion baseline, in bits (measured from
/// [`ErosionMemory`]).
pub const EROSION_MEMORY_BITS: u64 = (std::mem::size_of::<ErosionMemory>() * 8) as u64;

/// Memory of a particle running the erosion baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErosionMemory {
    /// The election output.
    pub status: Status,
}

/// The erosion-only leader-election algorithm: implements the per-activation
/// [`Algorithm`] and, on top of it, the unified [`LeaderElection`] API.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErosionLeaderElection;

impl Algorithm for ErosionLeaderElection {
    type Memory = ErosionMemory;

    /// Erosion activations only read neighbour statuses and adjacent
    /// occupancy, so quiescent particles (interior candidates, decided
    /// particles waiting on their neighbourhood) may be parked. On stalled
    /// workloads (shapes with holes) the runner's unpark fallback re-scans
    /// everyone each round, exactly as without parking, until the budget
    /// surfaces the stall as `ElectionError::Stuck`.
    fn supports_quiescence(&self) -> bool {
        true
    }

    fn init(&self, _ctx: &InitContext) -> ErosionMemory {
        ErosionMemory {
            status: Status::Undecided,
        }
    }

    fn activate(&self, ctx: &mut ActivationContext<'_, ErosionMemory>) {
        let status = ctx.memory().status;
        if status != Status::Undecided {
            // Terminate once the whole neighbourhood has decided.
            let all_decided = ctx
                .neighbors()
                .into_iter()
                .all(|q| ctx.neighbor_memory(q).status != Status::Undecided);
            if all_decided {
                ctx.terminate();
            }
            return;
        }

        // Build the candidate mask: neighbours that are still undecided.
        let mut candidate = [false; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            if let Some(q) = ctx.neighbor_at_head(*d) {
                candidate[i] = ctx.neighbor_memory(q).status == Status::Undecided;
            }
        }

        if candidate.iter().all(|c| !c) {
            // Last remaining candidate in its neighbourhood: on a
            // simply-connected candidate set this means it is the last
            // candidate overall.
            ctx.memory_mut().status = Status::Leader;
        } else if local_sce(&candidate) {
            ctx.memory_mut().status = Status::Follower;
        }
    }
}

impl LeaderElection for ErosionLeaderElection {
    fn name(&self) -> &'static str {
        "erosion-le"
    }

    fn elect_observed(
        &self,
        shape: &Shape,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, ElectionError> {
        check_initial_configuration(shape)?;
        let scheduler_name = scheduler.name();
        observer.on_phase_start(self.name(), phase::ELECTION);

        let system =
            ParticleSystem::from_shape_with_backend(shape, &ErosionLeaderElection, opts.occupancy);
        let mut runner = Runner::new(system, ErosionLeaderElection, scheduler);
        runner.track_connectivity = opts.track_connectivity;
        let budget = opts
            .round_budget
            .unwrap_or_else(|| 8 * (shape.len() as u64 + 8));
        let shared = std::cell::RefCell::new(observer);
        let stats = runner
            .run_hooked(
                budget,
                |round, system| {
                    shared
                        .borrow_mut()
                        .on_round_start(phase::ELECTION, round, system)
                },
                |_, stats| shared.borrow_mut().on_round(phase::ELECTION, stats.rounds),
            )
            .map_err(|e| match e {
                // The erosion stalling (reliably: shapes with holes) is a
                // documented limitation of the family, not an execution bug.
                RunError::RoundLimitExceeded { limit } => ElectionError::Stuck {
                    after_rounds: limit,
                },
                RunError::EmptySystem => ElectionError::InvalidInitialConfiguration("empty shape"),
            })?;
        let observer = shared.into_inner();

        let system = runner.into_system();
        // No particle ever moves, but a perturbation observer may have
        // removed particles mid-run, so the final configuration is read off
        // the post-run system rather than assumed to be the initial shape.
        let final_positions: Vec<_> = system.iter().map(|(_, p)| p.head()).collect();
        let final_connected = system.is_connected();
        let mut leaders = 0usize;
        let mut followers = 0usize;
        let mut undecided = 0usize;
        let mut leader = None;
        for (_, p) in system.iter() {
            match p.memory().status {
                Status::Leader => {
                    leaders += 1;
                    leader = Some(p.head());
                }
                Status::Follower => followers += 1,
                Status::Undecided => undecided += 1,
            }
        }
        let report = PhaseReport {
            name: phase::ELECTION.to_string(),
            rounds: stats.rounds,
            activations: stats.activations,
            moves: stats.moves(),
        };
        observer.on_phase_end(self.name(), &report);

        Ok(RunReport {
            algorithm: self.name().to_string(),
            scheduler: scheduler_name.to_string(),
            n: shape.len(),
            leader: leader.expect("a terminated erosion run has elected a leader"),
            leaders,
            followers,
            undecided,
            total_rounds: report.rounds,
            activations: report.activations,
            moves: report.moves,
            phases: vec![report],
            peak_memory_bits: EROSION_MEMORY_BITS,
            connectivity: ConnectivityReport {
                tracked: opts.track_connectivity,
                ever_disconnected: stats.ever_disconnected,
                disconnected_rounds: stats.disconnected_rounds,
            },
            final_connected,
            final_positions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, comb, hexagon, line, spiral};

    #[test]
    fn elects_unique_leader_on_simply_connected_shapes() {
        for shape in [hexagon(3), line(12), comb(4, 3), spiral(40)] {
            let report = ErosionLeaderElection
                .elect(&shape, &mut RoundRobin, &RunOptions::default())
                .unwrap();
            assert_eq!(report.leaders, 1, "shape {shape:?}");
            assert!(shape.contains(report.leader));
            assert_eq!(report.algorithm, "erosion-le");
            assert!(report.rounds_consistent());
            assert_eq!(report.final_positions.len(), shape.len());
            assert_eq!(report.moves, 0, "erosion never moves");
        }
    }

    #[test]
    fn stalls_on_shapes_with_holes() {
        let result =
            ErosionLeaderElection.elect(&annulus(4, 1), &mut RoundRobin, &RunOptions::default());
        assert!(matches!(result, Err(ElectionError::Stuck { .. })));
    }

    #[test]
    fn random_scheduler_also_elects_one_leader() {
        for seed in 0..3 {
            let report = ErosionLeaderElection
                .elect(
                    &hexagon(4),
                    &mut SeededRandom::new(seed),
                    &RunOptions::default(),
                )
                .unwrap();
            assert_eq!(report.leaders, 1);
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut rr = RoundRobin;
        assert!(matches!(
            ErosionLeaderElection.elect(&Shape::new(), &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(pm_grid::Point::new(40, 0));
        assert!(matches!(
            ErosionLeaderElection.elect(&disconnected, &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn line_takes_linearly_many_rounds_under_random_schedules() {
        // A line of n particles erodes from its two candidate endpoints only.
        // Under a scheduler aligned with the line (plain round robin) a whole
        // prefix can cascade within one asynchronous round, but under random
        // activation orders the expected progress per round is constant, so
        // the round count grows linearly in n.
        let avg = |n: u32| -> f64 {
            (0..5u64)
                .map(|s| {
                    ErosionLeaderElection
                        .elect(&line(n), &mut SeededRandom::new(s), &RunOptions::default())
                        .unwrap()
                        .total_rounds as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let r16 = avg(16);
        let r64 = avg(64);
        assert!(
            r64 >= 2.0 * r16,
            "expected roughly linear growth: {r16} vs {r64}"
        );
    }
}
