//! The no-movement erosion baseline (the Di Luna et al. \[22\] / Gastineau et
//! al. \[27\] family).
//!
//! Candidates erode themselves from the *particle shape* (not the area):
//! a contracted, undecided particle whose undecided neighbourhood makes it a
//! strictly convex erodable point of the remaining candidate set becomes a
//! follower; the last candidate becomes the leader. No particle ever moves.
//!
//! On simply-connected shapes this elects a unique leader in `O(n)` rounds
//! (each round erodes at least the convex corners of the candidate set, but a
//! snake-like shape erodes only a constant number of particles per round).
//! On shapes with holes the candidate set can never pierce the hole and the
//! erosion stalls — which is exactly why this family of algorithms assumes
//! hole-free initial shapes. Through the unified API the stall surfaces as
//! [`ElectionError::Stuck`].

use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler};
use pm_amoebot::system::{ParticleSystem, SystemControl};
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, Execution,
    ExecutionDriver, ExecutionStatus, LeaderElection, PhaseReport, RunOptions, RunReport,
    StepOutcome,
};
use pm_core::dle::{count_decisions, Status};
use pm_grid::{local_sce, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};

/// Per-particle memory of the erosion baseline, in bits (measured from
/// [`ErosionMemory`]).
pub const EROSION_MEMORY_BITS: u64 = (std::mem::size_of::<ErosionMemory>() * 8) as u64;

/// Memory of a particle running the erosion baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErosionMemory {
    /// The election output.
    pub status: Status,
}

/// The erosion-only leader-election algorithm: implements the per-activation
/// [`Algorithm`] and, on top of it, the unified [`LeaderElection`] API.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErosionLeaderElection;

impl Algorithm for ErosionLeaderElection {
    type Memory = ErosionMemory;

    /// Erosion activations only read neighbour statuses and adjacent
    /// occupancy, so quiescent particles (interior candidates, decided
    /// particles waiting on their neighbourhood) may be parked. On stalled
    /// workloads (shapes with holes) the runner's unpark fallback re-scans
    /// everyone each round, exactly as without parking, until the budget
    /// surfaces the stall as `ElectionError::Stuck`.
    fn supports_quiescence(&self) -> bool {
        true
    }

    fn init(&self, _ctx: &InitContext) -> ErosionMemory {
        ErosionMemory {
            status: Status::Undecided,
        }
    }

    fn activate(&self, ctx: &mut ActivationContext<'_, ErosionMemory>) {
        let status = ctx.memory().status;
        if status != Status::Undecided {
            // Terminate once the whole neighbourhood has decided.
            let all_decided = ctx
                .neighbors()
                .into_iter()
                .all(|q| ctx.neighbor_memory(q).status != Status::Undecided);
            if all_decided {
                ctx.terminate();
            }
            return;
        }

        // Build the candidate mask: neighbours that are still undecided.
        let mut candidate = [false; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            if let Some(q) = ctx.neighbor_at_head(*d) {
                candidate[i] = ctx.neighbor_memory(q).status == Status::Undecided;
            }
        }

        if candidate.iter().all(|c| !c) {
            // Last remaining candidate in its neighbourhood: on a
            // simply-connected candidate set this means it is the last
            // candidate overall.
            ctx.memory_mut().status = Status::Leader;
        } else if local_sce(&candidate) {
            ctx.memory_mut().status = Status::Follower;
        }
    }
}

/// The erosion execution's position: one round-driven `election` phase.
enum ErosionState {
    Start,
    Rounds,
    Finish,
    Done(Box<RunReport>),
}

/// The resumable state machine behind [`ErosionLeaderElection`]'s
/// [`LeaderElection::start`]. Generic over the scheduler it owns, so the
/// same machine backs borrowing executions (`S = &mut dyn Scheduler`) and
/// owned, `'static` ones (`S = Box<dyn Scheduler + Send>`).
struct ErosionExecution<S: Scheduler> {
    opts: RunOptions,
    scheduler_name: &'static str,
    n: usize,
    /// The live round-driven phase; consumed when the election ends.
    runner: Option<Runner<ErosionLeaderElection, S>>,
    budget: u64,
    phase_report: Option<PhaseReport>,
    state: ErosionState,
}

impl<S: Scheduler> ErosionExecution<S> {
    fn start(
        shape: &Shape,
        scheduler: S,
        opts: &RunOptions,
    ) -> Result<ErosionExecution<S>, ElectionError> {
        check_initial_configuration(shape)?;
        let scheduler_name = scheduler.name();
        let system =
            ParticleSystem::from_shape_with_backend(shape, &ErosionLeaderElection, opts.occupancy);
        let mut runner = Runner::new(system, ErosionLeaderElection, scheduler);
        runner.track_connectivity = opts.track_connectivity;
        let budget = opts
            .round_budget
            .unwrap_or_else(|| 8 * (shape.len() as u64 + 8));
        Ok(ErosionExecution {
            opts: *opts,
            scheduler_name,
            n: shape.len(),
            runner: Some(runner),
            budget,
            phase_report: None,
            state: ErosionState::Start,
        })
    }
}

/// `(decided, undecided)` status counts over a live erosion system (the
/// shared [`count_decisions`] tally).
fn erosion_counts(system: &ParticleSystem<ErosionMemory>) -> (usize, usize) {
    count_decisions(system.iter().map(|(_, p)| p.memory().status))
}

impl<S: Scheduler> ExecutionDriver for ErosionExecution<S> {
    fn step(&mut self) -> Result<StepOutcome, ElectionError> {
        match &mut self.state {
            ErosionState::Start => {
                self.state = ErosionState::Rounds;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::ELECTION,
                })
            }
            ErosionState::Rounds => {
                let runner = self.runner.as_mut().expect("Rounds state holds a runner");
                if runner.system().is_empty() {
                    // Only a caller-side perturbation can empty the system
                    // (start() validated the initial shape non-empty), so
                    // this is a runtime fault, not an invalid input —
                    // classified exactly as the pipeline driver does.
                    return Err(ElectionError::Run(RunError::EmptySystem));
                }
                if runner.is_complete() {
                    let mut runner = self.runner.take().expect("checked above");
                    runner.finalize();
                    let stats = *runner.stats();
                    let report = PhaseReport {
                        name: phase::ELECTION.to_string(),
                        rounds: stats.rounds,
                        activations: stats.activations,
                        moves: stats.moves(),
                    };
                    self.phase_report = Some(report.clone());
                    // The finished system is still needed for the final
                    // report; keep it by putting the runner back.
                    self.runner = Some(runner);
                    self.state = ErosionState::Finish;
                    return Ok(StepOutcome::PhaseEnded { report });
                }
                if runner.stats().rounds >= self.budget {
                    // The erosion stalling (reliably: shapes with holes) is
                    // a documented limitation of the family, not an
                    // execution bug.
                    return Err(ElectionError::Stuck {
                        after_rounds: self.budget,
                    });
                }
                let stats = runner.step();
                Ok(StepOutcome::RoundCompleted {
                    phase: phase::ELECTION,
                    rounds: stats.rounds,
                })
            }
            ErosionState::Finish => {
                let runner = self.runner.as_ref().expect("Finish keeps the system");
                let system = runner.system();
                let stats = *runner.stats();
                // No particle ever moves, but a caller-side perturbation may
                // have removed particles mid-run, so the final configuration
                // is read off the post-run system rather than assumed to be
                // the initial shape.
                let final_positions: Vec<_> = system.iter().map(|(_, p)| p.head()).collect();
                let final_connected = system.is_connected();
                let mut leaders = 0usize;
                let mut followers = 0usize;
                let mut undecided = 0usize;
                let mut leader = None;
                for (_, p) in system.iter() {
                    match p.memory().status {
                        Status::Leader => {
                            leaders += 1;
                            leader = Some(p.head());
                        }
                        Status::Follower => followers += 1,
                        Status::Undecided => undecided += 1,
                    }
                }
                let phase_report = self.phase_report.clone().expect("the election phase ended");
                let report = RunReport {
                    algorithm: "erosion-le".to_string(),
                    scheduler: self.scheduler_name.to_string(),
                    n: self.n,
                    leader: leader.expect("a terminated erosion run has elected a leader"),
                    leaders,
                    followers,
                    undecided,
                    total_rounds: phase_report.rounds,
                    activations: phase_report.activations,
                    moves: phase_report.moves,
                    phases: vec![phase_report],
                    peak_memory_bits: EROSION_MEMORY_BITS,
                    connectivity: ConnectivityReport {
                        tracked: self.opts.track_connectivity,
                        ever_disconnected: stats.ever_disconnected,
                        disconnected_rounds: stats.disconnected_rounds,
                    },
                    final_connected,
                    final_positions,
                    profile: Vec::new(),
                };
                self.state = ErosionState::Done(Box::new(report.clone()));
                Ok(StepOutcome::Finished(report))
            }
            ErosionState::Done(report) => Ok(StepOutcome::Finished((**report).clone())),
        }
    }

    fn status(&self) -> ExecutionStatus {
        let (phase, rounds, next_round, counts) = match &self.state {
            ErosionState::Start => (None, 0, None, None),
            ErosionState::Rounds => {
                let runner = self.runner.as_ref().expect("Rounds state holds a runner");
                let rounds = runner.stats().rounds;
                let next = if !runner.is_complete() && rounds < self.budget {
                    Some(rounds)
                } else {
                    None
                };
                (
                    Some(phase::ELECTION),
                    rounds,
                    next,
                    Some(erosion_counts(runner.system())),
                )
            }
            ErosionState::Finish | ErosionState::Done(_) => {
                let counts = self
                    .runner
                    .as_ref()
                    .map(|runner| erosion_counts(runner.system()));
                let rounds = self.phase_report.as_ref().map_or(0, |report| report.rounds);
                (None, rounds, None, counts)
            }
        };
        let (decided, undecided) = counts.unwrap_or((0, self.n));
        ExecutionStatus {
            algorithm: "erosion-le",
            phase,
            rounds_in_phase: if phase.is_some() { rounds } else { 0 },
            total_rounds: rounds,
            decided,
            undecided,
            next_round,
            finished: matches!(self.state, ErosionState::Done(_)),
        }
    }

    fn next_round(&self) -> Option<(&'static str, u64)> {
        if !matches!(self.state, ErosionState::Rounds) {
            return None;
        }
        let runner = self.runner.as_ref()?;
        let rounds = runner.stats().rounds;
        (!runner.is_complete() && rounds < self.budget).then_some((phase::ELECTION, rounds))
    }

    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        if !matches!(self.state, ErosionState::Rounds) {
            return None;
        }
        self.runner
            .as_mut()
            .map(|runner| Box::new(runner.control()) as Box<dyn SystemControl + '_>)
    }
}

impl LeaderElection for ErosionLeaderElection {
    fn name(&self) -> &'static str {
        "erosion-le"
    }

    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError> {
        Ok(Execution::new(ErosionExecution::start(
            shape, scheduler, opts,
        )?))
    }

    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError> {
        Ok(Execution::new(ErosionExecution::start(
            shape, scheduler, opts,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, comb, hexagon, line, spiral};

    #[test]
    fn elects_unique_leader_on_simply_connected_shapes() {
        for shape in [hexagon(3), line(12), comb(4, 3), spiral(40)] {
            let report = ErosionLeaderElection
                .elect(&shape, &mut RoundRobin, &RunOptions::default())
                .unwrap();
            assert_eq!(report.leaders, 1, "shape {shape:?}");
            assert!(shape.contains(report.leader));
            assert_eq!(report.algorithm, "erosion-le");
            assert!(report.rounds_consistent());
            assert_eq!(report.final_positions.len(), shape.len());
            assert_eq!(report.moves, 0, "erosion never moves");
        }
    }

    #[test]
    fn stalls_on_shapes_with_holes() {
        let result =
            ErosionLeaderElection.elect(&annulus(4, 1), &mut RoundRobin, &RunOptions::default());
        assert!(matches!(result, Err(ElectionError::Stuck { .. })));
    }

    #[test]
    fn random_scheduler_also_elects_one_leader() {
        for seed in 0..3 {
            let report = ErosionLeaderElection
                .elect(
                    &hexagon(4),
                    &mut SeededRandom::new(seed),
                    &RunOptions::default(),
                )
                .unwrap();
            assert_eq!(report.leaders, 1);
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut rr = RoundRobin;
        assert!(matches!(
            ErosionLeaderElection.elect(&Shape::new(), &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(pm_grid::Point::new(40, 0));
        assert!(matches!(
            ErosionLeaderElection.elect(&disconnected, &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn line_takes_linearly_many_rounds_under_random_schedules() {
        // A line of n particles erodes from its two candidate endpoints only.
        // Under a scheduler aligned with the line (plain round robin) a whole
        // prefix can cascade within one asynchronous round, but under random
        // activation orders the expected progress per round is constant, so
        // the round count grows linearly in n.
        let avg = |n: u32| -> f64 {
            (0..5u64)
                .map(|s| {
                    ErosionLeaderElection
                        .elect(&line(n), &mut SeededRandom::new(s), &RunOptions::default())
                        .unwrap()
                        .total_rounds as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let r16 = avg(16);
        let r64 = avg(64);
        assert!(
            r64 >= 2.0 * r16,
            "expected roughly linear growth: {r16} vs {r64}"
        );
    }
}
