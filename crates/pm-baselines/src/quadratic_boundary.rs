//! The quadratic deterministic boundary-election baseline (Bazzi–Briones \[3\]
//! style).
//!
//! This is the same segment competition over boundary v-node rings that the
//! paper's OBD primitive uses, but with *unpipelined* comparisons: two
//! segments are compared element by element while frozen, so a comparison
//! between segments of sizes `|s|` and `|s1|` costs `Θ(|s|·|s1|)` rounds.
//! That is precisely the bottleneck the paper removes with pipelining
//! (Section 5.2), and it is what makes this family `O(n²)` overall. The
//! baseline elects the heads of the surviving outer-boundary segments — up to
//! six leaders, exactly as in \[3\].

use pm_amoebot::scheduler::Scheduler;
use pm_amoebot::system::SystemControl;
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, Execution,
    ExecutionDriver, ExecutionStatus, LeaderElection, PhaseReport, RunOptions, RunReport,
    StepOutcome,
};
use pm_core::obd::{CompetitionCostModel, ObdSimulator};
use pm_grid::{outer_boundary_ring, Shape};
use std::borrow::Cow;

/// Nominal per-particle memory of the quadratic boundary election, in bits:
/// like OBD's segment competition, a constant number of machine words
/// (the comparisons are slow, not memory-hungry; closed-form simulation,
/// model-level `O(1)` bound).
pub const QUADRATIC_BOUNDARY_MEMORY_BITS: u64 = 96;

/// The quadratic deterministic boundary-election baseline behind the unified
/// API. Deterministic and hole-tolerant, but elects up to six leaders and
/// pays unpipelined `Θ(|s|·|s1|)` segment comparisons; the scheduler
/// argument only names the activation model in the report (the competition
/// is simulated in closed form).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuadraticBoundary;

/// The quadratic-boundary execution: one closed-form phase as one coarse
/// step.
enum QuadraticState {
    Start,
    Run,
    Finish,
    Done(Box<RunReport>),
}

/// The resumable state machine behind [`QuadraticBoundary`]'s
/// [`LeaderElection::start`]. Holds the shape as a `Cow`, so the same
/// machine backs borrowing and owned (`'static`) executions.
struct QuadraticExecution<'a> {
    opts: RunOptions,
    scheduler_name: &'static str,
    shape: Cow<'a, Shape>,
    election: Option<PhaseReport>,
    leaders: usize,
    state: QuadraticState,
}

impl<'a> QuadraticExecution<'a> {
    fn new(
        shape: Cow<'a, Shape>,
        scheduler_name: &'static str,
        opts: &RunOptions,
    ) -> QuadraticExecution<'a> {
        QuadraticExecution {
            opts: *opts,
            scheduler_name,
            shape,
            election: None,
            leaders: 0,
            state: QuadraticState::Start,
        }
    }
}

impl ExecutionDriver for QuadraticExecution<'_> {
    fn step(&mut self) -> Result<StepOutcome, ElectionError> {
        match &self.state {
            QuadraticState::Start => {
                self.state = QuadraticState::Run;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::ELECTION,
                })
            }
            QuadraticState::Run => {
                let outcome = ObdSimulator::new(&self.shape)
                    .run_with_cost_model(CompetitionCostModel::Sequential);
                let outer = outcome
                    .decisions
                    .iter()
                    .find(|d| d.declared_outer)
                    .expect("a connected shape has an outer boundary");
                // Up to six surviving segment heads, but never more than
                // there are particles (degenerate rings of tiny shapes).
                self.leaders = outer.stable_segments.clamp(1, 6).min(self.shape.len());
                let election = PhaseReport {
                    name: phase::ELECTION.to_string(),
                    rounds: outcome.rounds,
                    activations: 0,
                    moves: 0,
                };
                self.election = Some(election.clone());
                self.state = QuadraticState::Finish;
                Ok(StepOutcome::PhaseEnded { report: election })
            }
            QuadraticState::Finish => {
                let election = self.election.clone().expect("the election phase ran");
                let ring = outer_boundary_ring(&self.shape);
                let leader = ring
                    .vnodes()
                    .first()
                    .map(|v| v.point)
                    .expect("a non-empty shape has outer-boundary v-nodes");
                let report = RunReport {
                    algorithm: "quadratic-boundary".to_string(),
                    scheduler: self.scheduler_name.to_string(),
                    n: self.shape.len(),
                    leader,
                    leaders: self.leaders,
                    // Every non-head particle learns the outcome when the
                    // surviving segments are announced.
                    followers: self.shape.len() - self.leaders,
                    undecided: 0,
                    total_rounds: election.rounds,
                    activations: 0,
                    moves: 0,
                    phases: vec![election],
                    peak_memory_bits: QUADRATIC_BOUNDARY_MEMORY_BITS,
                    connectivity: ConnectivityReport {
                        tracked: self.opts.track_connectivity,
                        ..ConnectivityReport::default()
                    },
                    // Boundary election never moves particles.
                    final_connected: true,
                    final_positions: self.shape.iter().collect(),
                    profile: Vec::new(),
                };
                self.state = QuadraticState::Done(Box::new(report.clone()));
                Ok(StepOutcome::Finished(report))
            }
            QuadraticState::Done(report) => Ok(StepOutcome::Finished((**report).clone())),
        }
    }

    fn status(&self) -> ExecutionStatus {
        let n = self.shape.len();
        let decided = match &self.state {
            QuadraticState::Finish | QuadraticState::Done(_) => n,
            _ => 0,
        };
        ExecutionStatus {
            algorithm: "quadratic-boundary",
            phase: match &self.state {
                QuadraticState::Run => Some(phase::ELECTION),
                _ => None,
            },
            rounds_in_phase: 0,
            total_rounds: self.election.as_ref().map_or(0, |e| e.rounds),
            decided,
            undecided: n - decided,
            next_round: None,
            finished: matches!(self.state, QuadraticState::Done(_)),
        }
    }

    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        // The competition is simulated in closed form: there is no live
        // particle system to mutate.
        None
    }
}

impl LeaderElection for QuadraticBoundary {
    fn name(&self) -> &'static str {
        "quadratic-boundary"
    }

    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError> {
        check_initial_configuration(shape)?;
        Ok(Execution::new(QuadraticExecution::new(
            Cow::Borrowed(shape),
            scheduler.name(),
            opts,
        )))
    }

    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError> {
        check_initial_configuration(shape)?;
        Ok(Execution::new(QuadraticExecution::new(
            Cow::Owned(shape.clone()),
            scheduler.name(),
            opts,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_core::obd::run_obd;
    use pm_grid::builder::{annulus, hexagon, parallelogram};

    fn elect(shape: &Shape) -> Result<RunReport, ElectionError> {
        QuadraticBoundary.elect(shape, &mut RoundRobin, &RunOptions::default())
    }

    #[test]
    fn elects_at_most_six_leaders_and_handles_holes() {
        for shape in [hexagon(3), annulus(5, 2), parallelogram(6, 4)] {
            let report = elect(&shape).unwrap();
            assert!(report.leaders >= 1 && report.leaders <= 6);
            assert!(report.total_rounds > 0);
            assert!(report.rounds_consistent());
            assert!(shape.contains(report.leader));
        }
    }

    #[test]
    fn slower_than_pipelined_obd() {
        // The whole point of the paper's pipelining: on the same shape the
        // sequential comparison model pays substantially more rounds, and the
        // gap widens with the boundary length.
        let small = hexagon(4);
        let large = hexagon(10);
        let ratio = |shape: &Shape| {
            let quad = elect(shape).unwrap().total_rounds as f64;
            let pipe = run_obd(shape).rounds as f64;
            quad / pipe
        };
        let small_ratio = ratio(&small);
        let large_ratio = ratio(&large);
        assert!(
            small_ratio > 1.0,
            "sequential must be slower ({small_ratio})"
        );
        assert!(
            large_ratio > small_ratio,
            "the gap must widen with size ({small_ratio} -> {large_ratio})"
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(elect(&Shape::new()).is_err());
    }
}
