//! The quadratic deterministic boundary-election baseline (Bazzi–Briones [3]
//! style).
//!
//! This is the same segment competition over boundary v-node rings that the
//! paper's OBD primitive uses, but with *unpipelined* comparisons: two
//! segments are compared element by element while frozen, so a comparison
//! between segments of sizes `|s|` and `|s1|` costs `Θ(|s|·|s1|)` rounds.
//! That is precisely the bottleneck the paper removes with pipelining
//! (Section 5.2), and it is what makes this family `O(n²)` overall. The
//! baseline elects the heads of the surviving outer-boundary segments — up to
//! six leaders, exactly as in [3].

use pm_amoebot::scheduler::Scheduler;
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, LeaderElection,
    PhaseReport, RunObserver, RunOptions, RunReport,
};
use pm_core::obd::{CompetitionCostModel, ObdSimulator};
use pm_grid::{outer_boundary_ring, Shape};

/// Nominal per-particle memory of the quadratic boundary election, in bits:
/// like OBD's segment competition, a constant number of machine words
/// (the comparisons are slow, not memory-hungry; closed-form simulation,
/// model-level `O(1)` bound).
pub const QUADRATIC_BOUNDARY_MEMORY_BITS: u64 = 96;

/// The quadratic deterministic boundary-election baseline behind the unified
/// API. Deterministic and hole-tolerant, but elects up to six leaders and
/// pays unpipelined `Θ(|s|·|s1|)` segment comparisons; the scheduler
/// argument only names the activation model in the report (the competition
/// is simulated in closed form).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuadraticBoundary;

impl LeaderElection for QuadraticBoundary {
    fn name(&self) -> &'static str {
        "quadratic-boundary"
    }

    fn elect_observed(
        &self,
        shape: &Shape,
        scheduler: &mut dyn Scheduler,
        opts: &RunOptions,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, ElectionError> {
        check_initial_configuration(shape)?;

        observer.on_phase_start(self.name(), phase::ELECTION);
        let outcome =
            ObdSimulator::new(shape).run_with_cost_model(CompetitionCostModel::Sequential);
        let outer = outcome
            .decisions
            .iter()
            .find(|d| d.declared_outer)
            .expect("a connected shape has an outer boundary");
        // Up to six surviving segment heads, but never more than there are
        // particles (degenerate rings of tiny shapes).
        let leaders = outer.stable_segments.clamp(1, 6).min(shape.len());
        let ring = outer_boundary_ring(shape);
        let leader = ring
            .vnodes()
            .first()
            .map(|v| v.point)
            .expect("a non-empty shape has outer-boundary v-nodes");
        let election = PhaseReport {
            name: phase::ELECTION.to_string(),
            rounds: outcome.rounds,
            activations: 0,
            moves: 0,
        };
        observer.on_phase_end(self.name(), &election);

        Ok(RunReport {
            algorithm: self.name().to_string(),
            scheduler: scheduler.name().to_string(),
            n: shape.len(),
            leader,
            leaders,
            // Every non-head particle learns the outcome when the surviving
            // segments are announced.
            followers: shape.len() - leaders,
            undecided: 0,
            total_rounds: election.rounds,
            activations: 0,
            moves: 0,
            phases: vec![election],
            peak_memory_bits: QUADRATIC_BOUNDARY_MEMORY_BITS,
            connectivity: ConnectivityReport {
                tracked: opts.track_connectivity,
                ..ConnectivityReport::default()
            },
            // Boundary election never moves particles.
            final_connected: true,
            final_positions: shape.iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_core::obd::run_obd;
    use pm_grid::builder::{annulus, hexagon, parallelogram};

    fn elect(shape: &Shape) -> Result<RunReport, ElectionError> {
        QuadraticBoundary.elect(shape, &mut RoundRobin, &RunOptions::default())
    }

    #[test]
    fn elects_at_most_six_leaders_and_handles_holes() {
        for shape in [hexagon(3), annulus(5, 2), parallelogram(6, 4)] {
            let report = elect(&shape).unwrap();
            assert!(report.leaders >= 1 && report.leaders <= 6);
            assert!(report.total_rounds > 0);
            assert!(report.rounds_consistent());
            assert!(shape.contains(report.leader));
        }
    }

    #[test]
    fn slower_than_pipelined_obd() {
        // The whole point of the paper's pipelining: on the same shape the
        // sequential comparison model pays substantially more rounds, and the
        // gap widens with the boundary length.
        let small = hexagon(4);
        let large = hexagon(10);
        let ratio = |shape: &Shape| {
            let quad = elect(shape).unwrap().total_rounds as f64;
            let pipe = run_obd(shape).rounds as f64;
            quad / pipe
        };
        let small_ratio = ratio(&small);
        let large_ratio = ratio(&large);
        assert!(
            small_ratio > 1.0,
            "sequential must be slower ({small_ratio})"
        );
        assert!(
            large_ratio > small_ratio,
            "the gap must widen with size ({small_ratio} -> {large_ratio})"
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(elect(&Shape::new()).is_err());
    }
}
