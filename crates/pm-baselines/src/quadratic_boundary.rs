//! The quadratic deterministic boundary-election baseline (Bazzi–Briones [3]
//! style).
//!
//! This is the same segment competition over boundary v-node rings that the
//! paper's OBD primitive uses, but with *unpipelined* comparisons: two
//! segments are compared element by element while frozen, so a comparison
//! between segments of sizes `|s|` and `|s1|` costs `Θ(|s|·|s1|)` rounds.
//! That is precisely the bottleneck the paper removes with pipelining
//! (Section 5.2), and it is what makes this family `O(n²)` overall. The
//! baseline elects the heads of the surviving outer-boundary segments — up to
//! six leaders, exactly as in [3].

use crate::{BaselineError, BaselineOutcome};
use pm_core::obd::{CompetitionCostModel, ObdSimulator};
use pm_grid::{outer_boundary_ring, Shape};

/// Runs the quadratic boundary-election baseline.
///
/// # Errors
///
/// Returns [`BaselineError::InvalidInput`] for empty or disconnected shapes.
pub fn run_quadratic_boundary(shape: &Shape) -> Result<BaselineOutcome, BaselineError> {
    if shape.is_empty() {
        return Err(BaselineError::InvalidInput("empty shape"));
    }
    if !shape.is_connected() {
        return Err(BaselineError::InvalidInput("shape must be connected"));
    }
    let outcome = ObdSimulator::new(shape).run_with_cost_model(CompetitionCostModel::Sequential);
    let outer = outcome
        .decisions
        .iter()
        .find(|d| d.declared_outer)
        .expect("a connected shape has an outer boundary");
    let ring = outer_boundary_ring(shape);
    let leader = ring.vnodes().first().map(|v| v.point);
    Ok(BaselineOutcome {
        algorithm: "quadratic-boundary",
        rounds: outcome.rounds,
        leaders: outer.stable_segments.clamp(1, 6),
        leader,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::obd::run_obd;
    use pm_grid::builder::{annulus, hexagon, parallelogram};

    #[test]
    fn elects_at_most_six_leaders_and_handles_holes() {
        for shape in [hexagon(3), annulus(5, 2), parallelogram(6, 4)] {
            let outcome = run_quadratic_boundary(&shape).unwrap();
            assert!(outcome.leaders >= 1 && outcome.leaders <= 6);
            assert!(outcome.rounds > 0);
        }
    }

    #[test]
    fn slower_than_pipelined_obd() {
        // The whole point of the paper's pipelining: on the same shape the
        // sequential comparison model pays substantially more rounds, and the
        // gap widens with the boundary length.
        let small = hexagon(4);
        let large = hexagon(10);
        let ratio = |shape: &Shape| {
            let quad = run_quadratic_boundary(shape).unwrap().rounds as f64;
            let pipe = run_obd(shape).rounds as f64;
            quad / pipe
        };
        let small_ratio = ratio(&small);
        let large_ratio = ratio(&large);
        assert!(small_ratio > 1.0, "sequential must be slower ({small_ratio})");
        assert!(
            large_ratio > small_ratio,
            "the gap must widen with size ({small_ratio} -> {large_ratio})"
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(run_quadratic_boundary(&Shape::new()).is_err());
    }
}
