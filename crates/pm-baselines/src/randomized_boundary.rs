//! The randomized boundary-election baseline (the Derakhshandeh et al. \[19\] /
//! Daymude et al. \[10, 11\] family).
//!
//! Candidates sit on the outer boundary and play a coin-flip tournament: in
//! every phase each surviving candidate flips a fair coin; if at least one
//! candidate flips heads, the tails candidates retire. A phase costs as many
//! rounds as the largest gap (in boundary hops) between surviving candidates,
//! because that is how far the "you lost / you survived" tokens must travel
//! along the boundary. Once a single candidate remains, the result is flooded
//! through the shape (one additional `O(D)` term). The expected total is
//! `O(L_out + D)` rounds, matching the bounds reported in Table 1 for the
//! randomized algorithms.

use pm_amoebot::scheduler::Scheduler;
use pm_amoebot::system::SystemControl;
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, Execution,
    ExecutionDriver, ExecutionStatus, LeaderElection, PhaseReport, RunOptions, RunReport,
    StepOutcome,
};
use pm_grid::{outer_boundary_ring, DistanceMap, Point, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;

/// Nominal per-particle memory of the randomized boundary election, in bits:
/// a coin, a candidate flag and a constant number of token counters (the
/// tournament is simulated in closed form; model-level `O(1)` bound).
pub const RANDOMIZED_BOUNDARY_MEMORY_BITS: u64 = 32;

/// The randomized boundary-election baseline behind the unified API. The
/// coin flips are driven by [`RunOptions::seed`], so runs are deterministic
/// given the options; the scheduler argument only names the activation model
/// in the report (the tournament is simulated in closed form).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomizedBoundary;

/// Outcome of the closed-form tournament: rounds spent and the winner.
fn tournament(shape: &Shape, seed: u64) -> (u64, Point) {
    let ring = outer_boundary_ring(shape);
    let ring_len = ring.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Candidate v-node indices along the outer boundary ring.
    let mut candidates: Vec<usize> = (0..ring_len).collect();
    let mut rounds: u64 = 0;

    while candidates.len() > 1 {
        // Each surviving candidate flips a fair coin.
        let flips: Vec<bool> = candidates.iter().map(|_| rng.gen_bool(0.5)).collect();
        let any_heads = flips.iter().any(|h| *h);
        // The phase costs the largest gap between surviving candidates: the
        // retirement tokens travel along the boundary between consecutive
        // candidates, in parallel.
        let survivors: Vec<usize> = if any_heads {
            candidates
                .iter()
                .zip(&flips)
                .filter(|(_, heads)| **heads)
                .map(|(c, _)| *c)
                .collect()
        } else {
            candidates.clone()
        };
        let max_gap = if survivors.len() <= 1 {
            ring_len as u64
        } else {
            let mut gap = 0u64;
            for (i, &c) in survivors.iter().enumerate() {
                let next = survivors[(i + 1) % survivors.len()];
                let hops = (next + ring_len - c) % ring_len;
                gap = gap.max(hops as u64);
            }
            gap.max(1)
        };
        rounds += max_gap;
        candidates = survivors;
    }

    (rounds, ring.vnodes()[candidates[0]].point)
}

/// The randomized-boundary execution: two closed-form phases, each a single
/// coarse step (the tournament, then the announcement flood).
enum RandomizedState {
    StartTournament,
    RunTournament,
    StartFlood,
    RunFlood,
    Finish,
    Done(Box<RunReport>),
}

/// The resumable state machine behind [`RandomizedBoundary`]'s
/// [`LeaderElection::start`]. Holds the shape as a `Cow`, so the same
/// machine backs borrowing and owned (`'static`) executions.
struct RandomizedExecution<'a> {
    opts: RunOptions,
    scheduler_name: &'static str,
    shape: Cow<'a, Shape>,
    winner: Option<Point>,
    /// Per-phase statistics, built exactly once each: the same structs
    /// surface in [`StepOutcome::PhaseEnded`] and in the final
    /// [`RunReport::phases`], so the two can never diverge.
    election_report: Option<PhaseReport>,
    flood_report: Option<PhaseReport>,
    state: RandomizedState,
}

impl<'a> RandomizedExecution<'a> {
    fn new(
        shape: Cow<'a, Shape>,
        scheduler_name: &'static str,
        opts: &RunOptions,
    ) -> RandomizedExecution<'a> {
        RandomizedExecution {
            opts: *opts,
            scheduler_name,
            shape,
            winner: None,
            election_report: None,
            flood_report: None,
            state: RandomizedState::StartTournament,
        }
    }
}

impl ExecutionDriver for RandomizedExecution<'_> {
    fn step(&mut self) -> Result<StepOutcome, ElectionError> {
        match &self.state {
            RandomizedState::StartTournament => {
                self.state = RandomizedState::RunTournament;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::ELECTION,
                })
            }
            RandomizedState::RunTournament => {
                let (rounds, winner) = tournament(&self.shape, self.opts.seed);
                self.winner = Some(winner);
                let report = PhaseReport {
                    name: phase::ELECTION.to_string(),
                    rounds,
                    activations: 0,
                    moves: 0,
                };
                self.election_report = Some(report.clone());
                self.state = RandomizedState::StartFlood;
                Ok(StepOutcome::PhaseEnded { report })
            }
            RandomizedState::StartFlood => {
                self.state = RandomizedState::RunFlood;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::FLOOD,
                })
            }
            RandomizedState::RunFlood => {
                // Termination announcement: flood from the winner through
                // the shape.
                let winner = self.winner.expect("the tournament ran");
                let flood_rounds = DistanceMap::within_shape(&self.shape, winner)
                    .eccentricity_over(self.shape.iter())
                    .unwrap_or(0) as u64;
                let report = PhaseReport {
                    name: phase::FLOOD.to_string(),
                    rounds: flood_rounds,
                    activations: 0,
                    moves: 0,
                };
                self.flood_report = Some(report.clone());
                self.state = RandomizedState::Finish;
                Ok(StepOutcome::PhaseEnded { report })
            }
            RandomizedState::Finish => {
                let winner = self.winner.expect("the tournament ran");
                let election = self.election_report.clone().expect("the tournament ran");
                let flood = self.flood_report.clone().expect("the flood ran");
                let report = RunReport {
                    algorithm: "randomized-boundary".to_string(),
                    scheduler: self.scheduler_name.to_string(),
                    n: self.shape.len(),
                    leader: winner,
                    leaders: 1,
                    // The flood announces the winner to every other
                    // particle.
                    followers: self.shape.len() - 1,
                    undecided: 0,
                    total_rounds: election.rounds + flood.rounds,
                    activations: 0,
                    moves: 0,
                    phases: vec![election, flood],
                    peak_memory_bits: RANDOMIZED_BOUNDARY_MEMORY_BITS,
                    connectivity: ConnectivityReport {
                        tracked: self.opts.track_connectivity,
                        ..ConnectivityReport::default()
                    },
                    // Boundary election never moves particles.
                    final_connected: true,
                    final_positions: self.shape.iter().collect(),
                    profile: Vec::new(),
                };
                self.state = RandomizedState::Done(Box::new(report.clone()));
                Ok(StepOutcome::Finished(report))
            }
            RandomizedState::Done(report) => Ok(StepOutcome::Finished((**report).clone())),
        }
    }

    fn status(&self) -> ExecutionStatus {
        let n = self.shape.len();
        // Everyone decides when the flood completes (the winner's
        // announcement reaches every particle).
        let decided = match &self.state {
            RandomizedState::Finish | RandomizedState::Done(_) => n,
            _ => 0,
        };
        let phase = match &self.state {
            RandomizedState::RunTournament => Some(phase::ELECTION),
            RandomizedState::RunFlood => Some(phase::FLOOD),
            _ => None,
        };
        let total_rounds = self.election_report.as_ref().map_or(0, |r| r.rounds)
            + self.flood_report.as_ref().map_or(0, |r| r.rounds);
        ExecutionStatus {
            algorithm: "randomized-boundary",
            phase,
            rounds_in_phase: 0,
            total_rounds,
            decided,
            undecided: n - decided,
            next_round: None,
            finished: matches!(self.state, RandomizedState::Done(_)),
        }
    }

    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        // Both phases are simulated in closed form: there is no live
        // particle system to mutate.
        None
    }
}

impl LeaderElection for RandomizedBoundary {
    fn name(&self) -> &'static str {
        "randomized-boundary"
    }

    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError> {
        check_initial_configuration(shape)?;
        Ok(Execution::new(RandomizedExecution::new(
            Cow::Borrowed(shape),
            scheduler.name(),
            opts,
        )))
    }

    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError> {
        check_initial_configuration(shape)?;
        Ok(Execution::new(RandomizedExecution::new(
            Cow::Owned(shape.clone()),
            scheduler.name(),
            opts,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::RoundRobin;
    use pm_grid::builder::{annulus, hexagon, line};
    use pm_grid::Metric;

    fn elect(shape: &Shape, seed: u64) -> Result<RunReport, ElectionError> {
        let opts = RunOptions {
            seed,
            ..RunOptions::default()
        };
        RandomizedBoundary.elect(shape, &mut RoundRobin, &opts)
    }

    #[test]
    fn always_elects_exactly_one_leader() {
        for seed in 0..5 {
            for shape in [hexagon(3), annulus(4, 1), line(9)] {
                let report = elect(&shape, seed).unwrap();
                assert_eq!(report.leaders, 1);
                assert!(shape.contains(report.leader));
                assert!(report.rounds_consistent());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = elect(&hexagon(4), 11).unwrap();
        let b = elect(&hexagon(4), 11).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.phases.len(), 2, "tournament + flood");
    }

    #[test]
    fn handles_holes() {
        let report = elect(&annulus(5, 2), 3).unwrap();
        assert_eq!(report.leaders, 1);
    }

    #[test]
    fn rounds_are_of_order_lout_plus_d() {
        // Average over seeds to smooth the randomness, then compare against
        // the O(L_out + D) budget with a generous constant.
        for radius in [4u32, 8] {
            let shape = hexagon(radius);
            let metric = Metric::new(&shape);
            let budget = (shape.outer_boundary_len() + metric.grid_diameter() as usize) as f64;
            let avg: f64 = (0..10)
                .map(|s| elect(&shape, s).unwrap().total_rounds as f64)
                .sum::<f64>()
                / 10.0;
            assert!(avg < 12.0 * budget, "avg {avg} vs budget {budget}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(elect(&Shape::new(), 0).is_err());
    }

    #[test]
    fn single_particle() {
        let report = elect(&line(1), 0).unwrap();
        assert_eq!(report.leaders, 1);
        assert_eq!(report.total_rounds, 0);
    }
}
