//! The randomized boundary-election baseline (the Derakhshandeh et al. [19] /
//! Daymude et al. [10, 11] family).
//!
//! Candidates sit on the outer boundary and play a coin-flip tournament: in
//! every phase each surviving candidate flips a fair coin; if at least one
//! candidate flips heads, the tails candidates retire. A phase costs as many
//! rounds as the largest gap (in boundary hops) between surviving candidates,
//! because that is how far the "you lost / you survived" tokens must travel
//! along the boundary. Once a single candidate remains, the result is flooded
//! through the shape (one additional `O(D)` term). The expected total is
//! `O(L_out + D)` rounds, matching the bounds reported in Table 1 for the
//! randomized algorithms.

use crate::{BaselineError, BaselineOutcome};
use pm_grid::{outer_boundary_ring, DistanceMap, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the randomized boundary-election baseline with the given seed.
///
/// # Errors
///
/// Returns [`BaselineError::InvalidInput`] for empty or disconnected shapes.
pub fn run_randomized_boundary(shape: &Shape, seed: u64) -> Result<BaselineOutcome, BaselineError> {
    if shape.is_empty() {
        return Err(BaselineError::InvalidInput("empty shape"));
    }
    if !shape.is_connected() {
        return Err(BaselineError::InvalidInput("shape must be connected"));
    }
    let ring = outer_boundary_ring(shape);
    let ring_len = ring.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Candidate v-node indices along the outer boundary ring.
    let mut candidates: Vec<usize> = (0..ring_len).collect();
    let mut rounds: u64 = 0;

    while candidates.len() > 1 {
        // Each surviving candidate flips a fair coin.
        let flips: Vec<bool> = candidates.iter().map(|_| rng.gen_bool(0.5)).collect();
        let any_heads = flips.iter().any(|h| *h);
        // The phase costs the largest gap between surviving candidates: the
        // retirement tokens travel along the boundary between consecutive
        // candidates, in parallel.
        let survivors: Vec<usize> = if any_heads {
            candidates
                .iter()
                .zip(&flips)
                .filter(|(_, heads)| **heads)
                .map(|(c, _)| *c)
                .collect()
        } else {
            candidates.clone()
        };
        let max_gap = if survivors.len() <= 1 {
            ring_len as u64
        } else {
            let mut gap = 0u64;
            for (i, &c) in survivors.iter().enumerate() {
                let next = survivors[(i + 1) % survivors.len()];
                let hops = (next + ring_len - c) % ring_len;
                gap = gap.max(hops as u64);
            }
            gap.max(1)
        };
        rounds += max_gap;
        candidates = survivors;
    }

    // Termination announcement: flood from the winner through the shape.
    let winner_vnode = ring.vnodes()[candidates[0]];
    let winner = winner_vnode.point;
    let flood = DistanceMap::within_shape(shape, winner)
        .eccentricity_over(shape.iter())
        .unwrap_or(0) as u64;
    rounds += flood;

    Ok(BaselineOutcome {
        algorithm: "randomized-boundary",
        rounds,
        leaders: 1,
        leader: Some(winner),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_grid::builder::{annulus, hexagon, line};
    use pm_grid::Metric;

    #[test]
    fn always_elects_exactly_one_leader() {
        for seed in 0..5 {
            for shape in [hexagon(3), annulus(4, 1), line(9)] {
                let outcome = run_randomized_boundary(&shape, seed).unwrap();
                assert_eq!(outcome.leaders, 1);
                assert!(shape.contains(outcome.leader.unwrap()));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_randomized_boundary(&hexagon(4), 11).unwrap();
        let b = run_randomized_boundary(&hexagon(4), 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_holes() {
        let outcome = run_randomized_boundary(&annulus(5, 2), 3).unwrap();
        assert_eq!(outcome.leaders, 1);
    }

    #[test]
    fn rounds_are_of_order_lout_plus_d() {
        // Average over seeds to smooth the randomness, then compare against
        // the O(L_out + D) budget with a generous constant.
        for radius in [4u32, 8] {
            let shape = hexagon(radius);
            let metric = Metric::new(&shape);
            let budget = (shape.outer_boundary_len() + metric.grid_diameter() as usize) as f64;
            let avg: f64 = (0..10)
                .map(|s| run_randomized_boundary(&shape, s).unwrap().rounds as f64)
                .sum::<f64>()
                / 10.0;
            assert!(avg < 12.0 * budget, "avg {avg} vs budget {budget}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(run_randomized_boundary(&Shape::new(), 0).is_err());
    }

    #[test]
    fn single_particle() {
        let outcome = run_randomized_boundary(&line(1), 0).unwrap();
        assert_eq!(outcome.leaders, 1);
        assert_eq!(outcome.rounds, 0);
    }
}
