//! A self-stabilising leader election (the Chalopin–Das–Kokkou arXiv
//! 2408.08775 family): recovers a unique leader from *arbitrary* memory
//! corruption without any global reset.
//!
//! Every particle maintains a **claim** — the position of the particle it
//! currently believes to be the leader, stored as an offset from its own
//! position (so memories stay translation-invariant and particles never
//! learn global coordinates) — together with a **parent** direction towards
//! the claimed particle and a **hop** count along that parent chain. The
//! unique maximum-position particle (under a fixed lexicographic order on
//! offsets) ends up self-claiming; everyone else adopts its claim greedily
//! along BFS trees, which works on shapes with holes (the comparison runs
//! over the adjacency graph, not the boundary).
//!
//! Self-stabilisation comes from a *local certificate*: a non-self claim is
//! valid only if the parent neighbour exists, carries the same claim one hop
//! shorter, and the hop count stays under a global bound. A particle whose
//! certificate fails resets to claiming itself. Phantom claims — corrupted
//! memories naming positions no particle occupies — unravel bottom-up: the
//! minimum-hop holder of a phantom is locally invalid and resets, every
//! re-adoption of the phantom happens at strictly larger hop counts, and the
//! hop bound kills the count-to-infinity, after which the true maximum wins.
//!
//! The paper's construction is strictly constant-memory; storing the claim
//! as an `O(log n)`-bit offset is a documented simplification that keeps the
//! certificate checkable in one neighbourhood read. No particle ever moves
//! and no particle ever terminates — completion is the *stability* predicate
//! (every certificate valid, no strictly better claim adoptable), which the
//! quiescence machinery detects without burning activations.

use pm_amoebot::algorithm::{ActivationContext, Algorithm, InitContext};
use pm_amoebot::scheduler::{RunError, Runner, Scheduler};
use pm_amoebot::system::{ParticleSystem, SystemControl};
use pm_core::api::{
    check_initial_configuration, phase, ConnectivityReport, ElectionError, Execution,
    ExecutionDriver, ExecutionStatus, LeaderElection, PhaseReport, RunOptions, RunReport,
    StepOutcome,
};
use pm_grid::{Direction, Point, Shape, DIRECTIONS};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Per-particle memory of the self-stabilising election, in bits (measured
/// from [`SelfStabMemory`]; an `O(log n)`-bit simplification of the paper's
/// constant-memory construction, see the module docs).
pub const SELF_STAB_MEMORY_BITS: u64 = (std::mem::size_of::<SelfStabMemory>() * 8) as u64;

/// Memory of a particle running the self-stabilising election.
///
/// `(claim_q, claim_r) == (0, 0)` is the *self-claim*: the particle believes
/// itself to be the leader. Any other value names the claimed particle's
/// position relative to this particle's own, reached by following `parent`
/// for `hops` steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfStabMemory {
    /// Claimed leader position, `q` offset from the particle's own position.
    pub claim_q: i32,
    /// Claimed leader position, `r` offset from the particle's own position.
    pub claim_r: i32,
    /// Direction of the neighbour the claim was adopted from (`None` iff
    /// self-claiming).
    pub parent: Option<Direction>,
    /// Length of the parent chain to the claimed particle (0 iff
    /// self-claiming).
    pub hops: u32,
}

impl SelfStabMemory {
    /// The post-reset (and initial) state: claim yourself.
    fn self_claim() -> SelfStabMemory {
        SelfStabMemory {
            claim_q: 0,
            claim_r: 0,
            parent: None,
            hops: 0,
        }
    }

    /// Whether the particle claims itself.
    fn is_self_claim(&self) -> bool {
        self.claim_q == 0 && self.claim_r == 0
    }

    /// The claim offset in `i64` (candidate arithmetic must not overflow on
    /// adversarially corrupted `i32` extremes).
    fn claim(&self) -> (i64, i64) {
        (self.claim_q as i64, self.claim_r as i64)
    }
}

/// Total order on claim offsets: compare `r` first, then `q`. All
/// comparisons happen between offsets expressed in the same particle's
/// frame, so the order is translation-invariant: position `A` beats `B` iff
/// the offset `A - B` is lexicographically above `(0, 0)`.
fn claim_cmp(a: (i64, i64), b: (i64, i64)) -> Ordering {
    (a.1, a.0).cmp(&(b.1, b.0))
}

/// The grid offset of one direction, as `(q, r)`.
fn delta(d: Direction) -> (i64, i64) {
    let p = Point::ORIGIN.neighbor(d);
    (p.q as i64, p.r as i64)
}

/// One particle's local view: its own memory and its six neighbours'. Both
/// the activation handler and the global stability predicate reduce to
/// [`LocalView::repair`], so the two can never diverge.
struct LocalView {
    mem: SelfStabMemory,
    neighbors: [Option<SelfStabMemory>; 6],
}

impl LocalView {
    /// Whether the particle's certificate is locally valid: a self-claim
    /// with no parent and zero hops, or a claim that matches the parent
    /// neighbour's claim shifted by one step, one hop longer, within the
    /// hop bound, and naming a position strictly above the particle's own.
    fn cert_valid(&self, max_hops: u32) -> bool {
        if self.mem.is_self_claim() {
            return self.mem.parent.is_none() && self.mem.hops == 0;
        }
        let Some(d) = self.mem.parent else {
            return false;
        };
        let Some(q) = self.neighbors[d.index()] else {
            return false;
        };
        if self.mem.hops > max_hops || q.hops.checked_add(1) != Some(self.mem.hops) {
            return false;
        }
        let (dq, dr) = delta(d);
        let expected = (dq + q.claim().0, dr + q.claim().1);
        self.mem.claim() == expected && claim_cmp(self.mem.claim(), (0, 0)) == Ordering::Greater
    }

    /// The stabilising transition: validate the certificate (resetting to a
    /// self-claim on failure), then adopt the best neighbour-derived claim —
    /// strictly greater than the current one, or equal with strictly fewer
    /// hops. Returns the new memory iff it differs from the current one, so
    /// `None` is exactly local stability.
    fn repair(&self, max_hops: u32) -> Option<SelfStabMemory> {
        let mut cur = if self.cert_valid(max_hops) {
            self.mem
        } else {
            SelfStabMemory::self_claim()
        };
        for (i, neighbor) in self.neighbors.iter().enumerate() {
            let Some(q) = neighbor else { continue };
            if q.hops >= max_hops {
                continue;
            }
            let (dq, dr) = delta(DIRECTIONS[i]);
            let cand = (dq + q.claim().0, dr + q.claim().1);
            // Only positions strictly above our own are adoptable claims,
            // and the offset must survive the round-trip through `i32`.
            if claim_cmp(cand, (0, 0)) != Ordering::Greater {
                continue;
            }
            let (Ok(cand_q), Ok(cand_r)) = (i32::try_from(cand.0), i32::try_from(cand.1)) else {
                continue;
            };
            let cand_hops = q.hops + 1;
            let adopt = match claim_cmp(cand, cur.claim()) {
                Ordering::Greater => true,
                Ordering::Equal => !cur.is_self_claim() && cand_hops < cur.hops,
                Ordering::Less => false,
            };
            if adopt {
                cur = SelfStabMemory {
                    claim_q: cand_q,
                    claim_r: cand_r,
                    parent: Some(DIRECTIONS[i]),
                    hops: cand_hops,
                };
            }
        }
        (cur != self.mem).then_some(cur)
    }
}

/// SplitMix64: spreads corruption entropy across the memory fields.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-activation algorithm: carries the hop bound, which the election
/// wrapper sizes from the initial shape (with slack for regrow faults).
#[derive(Clone, Copy, Debug)]
struct SsMaxAlgorithm {
    max_hops: u32,
}

impl Algorithm for SsMaxAlgorithm {
    type Memory = SelfStabMemory;

    fn init(&self, _ctx: &InitContext) -> SelfStabMemory {
        SelfStabMemory::self_claim()
    }

    fn activate(&self, ctx: &mut ActivationContext<'_, SelfStabMemory>) {
        let mut neighbors = [None; 6];
        for (i, d) in DIRECTIONS.iter().enumerate() {
            if let Some(q) = ctx.neighbor_at_head(*d) {
                neighbors[i] = Some(*ctx.neighbor_memory(q));
            }
        }
        let view = LocalView {
            mem: *ctx.memory(),
            neighbors,
        };
        if let Some(next) = view.repair(self.max_hops) {
            *ctx.memory_mut() = next;
        }
    }

    /// Completion is *stability*, not termination: no particle ever reaches
    /// a final state (a terminated particle could not react to later
    /// corruption), so the whole run is complete exactly when every
    /// particle's repair step is a no-op.
    fn is_complete(&self, system: &ParticleSystem<SelfStabMemory>) -> bool {
        system
            .iter()
            .all(|(id, _)| view_at(system, id.index()).repair(self.max_hops).is_none())
    }

    /// Repair is a pure function of the local view, so stable particles may
    /// be parked; corruption, additions and removals all wake the affected
    /// neighbourhoods.
    fn supports_quiescence(&self) -> bool {
        true
    }

    /// The transient-fault model: overwrite the memory with arbitrary values
    /// of the memory type. Small offsets forge plausible phantom claims that
    /// must unravel through the certificate chain; occasionally huge hop
    /// counts exercise the hop bound (instantly invalid, instant reset).
    fn corrupt(&self, memory: &mut SelfStabMemory, entropy: u64) -> bool {
        let old = *memory;
        let a = splitmix(entropy);
        let b = splitmix(a);
        let c = splitmix(b);
        let d = splitmix(c);
        memory.claim_q = (a % 33) as i32 - 16;
        memory.claim_r = (b % 33) as i32 - 16;
        memory.parent = if c % 8 < 6 {
            Some(Direction::from_index((c % 6) as i32))
        } else {
            None
        };
        memory.hops = if d.is_multiple_of(4) {
            (d >> 32) as u32
        } else {
            (d % 24) as u32
        };
        *memory != old
    }
}

/// Builds one particle's [`LocalView`] from global system state (the
/// stability predicate's side of the shared repair logic). Particles never
/// move, so the head is the particle's only point.
fn view_at(system: &ParticleSystem<SelfStabMemory>, index: usize) -> LocalView {
    let id = pm_amoebot::particle::ParticleId::from_index(index);
    let pos = system.particle(id).head();
    let mut neighbors = [None; 6];
    for (i, d) in DIRECTIONS.iter().enumerate() {
        if let Some(q) = system.particle_at(pos.neighbor(*d)) {
            if q != id {
                neighbors[i] = Some(*system.particle(q).memory());
            }
        }
    }
    LocalView {
        mem: *system.particle(id).memory(),
        neighbors,
    }
}

/// `(stable, unstable)` particle counts over a live system.
fn stability_counts(system: &ParticleSystem<SelfStabMemory>, max_hops: u32) -> (usize, usize) {
    let stable = system
        .iter()
        .filter(|(id, _)| view_at(system, id.index()).repair(max_hops).is_none())
        .count();
    (stable, system.len() - stable)
}

/// The self-stabilising election's position: one round-driven phase.
enum SsMaxState {
    Start,
    Rounds,
    Finish,
    Done(Box<RunReport>),
}

/// The resumable state machine behind [`SelfStabMaxElection`]'s
/// [`LeaderElection::start`]; generic over the scheduler it owns exactly as
/// the erosion baseline's.
struct SsMaxExecution<S: Scheduler> {
    opts: RunOptions,
    scheduler_name: &'static str,
    n: usize,
    algorithm: SsMaxAlgorithm,
    runner: Option<Runner<SsMaxAlgorithm, S>>,
    budget: u64,
    phase_report: Option<PhaseReport>,
    state: SsMaxState,
}

impl<S: Scheduler> SsMaxExecution<S> {
    fn start(
        shape: &Shape,
        scheduler: S,
        opts: &RunOptions,
    ) -> Result<SsMaxExecution<S>, ElectionError> {
        check_initial_configuration(shape)?;
        let scheduler_name = scheduler.name();
        // The hop bound must exceed any reachable graph distance; the
        // diameter is below n, and the factor-2-plus-slack headroom keeps
        // regrow faults (which add particles mid-run) inside the bound.
        let algorithm = SsMaxAlgorithm {
            max_hops: 2 * shape.len() as u32 + 64,
        };
        let system = ParticleSystem::from_shape_with_backend(shape, &algorithm, opts.occupancy);
        let mut runner = Runner::new(system, algorithm, scheduler);
        runner.track_connectivity = opts.track_connectivity;
        // Stabilisation is O(diameter) from clean starts but phantom claims
        // can climb the hop chain before dying, so the default budget is
        // roomier than the erosion baseline's.
        let budget = opts
            .round_budget
            .unwrap_or_else(|| 16 * (shape.len() as u64 + 16));
        Ok(SsMaxExecution {
            opts: *opts,
            scheduler_name,
            n: shape.len(),
            algorithm,
            runner: Some(runner),
            budget,
            phase_report: None,
            state: SsMaxState::Start,
        })
    }
}

impl<S: Scheduler> ExecutionDriver for SsMaxExecution<S> {
    fn step(&mut self) -> Result<StepOutcome, ElectionError> {
        match &mut self.state {
            SsMaxState::Start => {
                self.state = SsMaxState::Rounds;
                Ok(StepOutcome::PhaseStarted {
                    phase: phase::ELECTION,
                })
            }
            SsMaxState::Rounds => {
                let runner = self.runner.as_mut().expect("Rounds state holds a runner");
                if runner.system().is_empty() {
                    return Err(ElectionError::Run(RunError::EmptySystem));
                }
                if runner.is_complete() {
                    let mut runner = self.runner.take().expect("checked above");
                    runner.finalize();
                    let stats = *runner.stats();
                    let report = PhaseReport {
                        name: phase::ELECTION.to_string(),
                        rounds: stats.rounds,
                        activations: stats.activations,
                        moves: stats.moves(),
                    };
                    self.phase_report = Some(report.clone());
                    self.runner = Some(runner);
                    self.state = SsMaxState::Finish;
                    return Ok(StepOutcome::PhaseEnded { report });
                }
                if runner.stats().rounds >= self.budget {
                    return Err(ElectionError::Stuck {
                        after_rounds: self.budget,
                    });
                }
                let stats = runner.step();
                Ok(StepOutcome::RoundCompleted {
                    phase: phase::ELECTION,
                    rounds: stats.rounds,
                })
            }
            SsMaxState::Finish => {
                let runner = self.runner.as_ref().expect("Finish keeps the system");
                let system = runner.system();
                let stats = *runner.stats();
                let final_positions: Vec<_> = system.iter().map(|(_, p)| p.head()).collect();
                let final_connected = system.is_connected();
                // At stability every claim resolves to an occupied position
                // and exactly one particle per connected component
                // self-claims (see the module docs); faults keep the shape
                // connected, so the leader count is 1.
                let mut leaders = 0usize;
                let mut leader = None;
                for (_, p) in system.iter() {
                    if p.memory().is_self_claim() {
                        leaders += 1;
                        leader = Some(p.head());
                    }
                }
                let followers = system.len() - leaders;
                let phase_report = self.phase_report.clone().expect("the election phase ended");
                let report = RunReport {
                    algorithm: "self-stab-max".to_string(),
                    scheduler: self.scheduler_name.to_string(),
                    n: self.n,
                    leader: leader.expect("a stable non-empty system has a self-claiming particle"),
                    leaders,
                    followers,
                    undecided: 0,
                    total_rounds: phase_report.rounds,
                    activations: phase_report.activations,
                    moves: phase_report.moves,
                    phases: vec![phase_report],
                    peak_memory_bits: SELF_STAB_MEMORY_BITS,
                    connectivity: ConnectivityReport {
                        tracked: self.opts.track_connectivity,
                        ever_disconnected: stats.ever_disconnected,
                        disconnected_rounds: stats.disconnected_rounds,
                    },
                    final_connected,
                    final_positions,
                    profile: Vec::new(),
                };
                self.state = SsMaxState::Done(Box::new(report.clone()));
                Ok(StepOutcome::Finished(report))
            }
            SsMaxState::Done(report) => Ok(StepOutcome::Finished((**report).clone())),
        }
    }

    fn status(&self) -> ExecutionStatus {
        let (phase, rounds, next_round, counts) = match &self.state {
            SsMaxState::Start => (None, 0, None, None),
            SsMaxState::Rounds => {
                let runner = self.runner.as_ref().expect("Rounds state holds a runner");
                let rounds = runner.stats().rounds;
                let next = if !runner.is_complete() && rounds < self.budget {
                    Some(rounds)
                } else {
                    None
                };
                (
                    Some(phase::ELECTION),
                    rounds,
                    next,
                    Some(stability_counts(runner.system(), self.algorithm.max_hops)),
                )
            }
            SsMaxState::Finish | SsMaxState::Done(_) => {
                let counts = self
                    .runner
                    .as_ref()
                    .map(|runner| stability_counts(runner.system(), self.algorithm.max_hops));
                let rounds = self.phase_report.as_ref().map_or(0, |report| report.rounds);
                (None, rounds, None, counts)
            }
        };
        let (decided, undecided) = counts.unwrap_or((0, self.n));
        ExecutionStatus {
            algorithm: "self-stab-max",
            phase,
            rounds_in_phase: if phase.is_some() { rounds } else { 0 },
            total_rounds: rounds,
            decided,
            undecided,
            next_round,
            finished: matches!(self.state, SsMaxState::Done(_)),
        }
    }

    fn next_round(&self) -> Option<(&'static str, u64)> {
        if !matches!(self.state, SsMaxState::Rounds) {
            return None;
        }
        let runner = self.runner.as_ref()?;
        let rounds = runner.stats().rounds;
        (!runner.is_complete() && rounds < self.budget).then_some((phase::ELECTION, rounds))
    }

    fn control(&mut self) -> Option<Box<dyn SystemControl + '_>> {
        if !matches!(self.state, SsMaxState::Rounds) {
            return None;
        }
        self.runner
            .as_mut()
            .map(|runner| Box::new(runner.control()) as Box<dyn SystemControl + '_>)
    }
}

/// The self-stabilising election behind the unified [`LeaderElection`] API.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfStabMaxElection;

impl LeaderElection for SelfStabMaxElection {
    fn name(&self) -> &'static str {
        "self-stab-max"
    }

    fn start<'a>(
        &'a self,
        shape: &'a Shape,
        scheduler: &'a mut (dyn Scheduler + Send),
        opts: &RunOptions,
    ) -> Result<Execution<'a>, ElectionError> {
        Ok(Execution::new(SsMaxExecution::start(
            shape, scheduler, opts,
        )?))
    }

    fn start_owned(
        &self,
        shape: &Shape,
        scheduler: Box<dyn Scheduler + Send>,
        opts: &RunOptions,
    ) -> Result<Execution<'static>, ElectionError> {
        Ok(Execution::new(SsMaxExecution::start(
            shape, scheduler, opts,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_amoebot::scheduler::{ReverseRoundRobin, RoundRobin, SeededRandom};
    use pm_grid::builder::{annulus, comb, hexagon, line, spiral};

    #[test]
    fn elects_unique_leader_including_on_holey_shapes() {
        for shape in [hexagon(3), line(12), comb(4, 3), spiral(40), annulus(4, 1)] {
            let report = SelfStabMaxElection
                .elect(&shape, &mut RoundRobin, &RunOptions::default())
                .unwrap();
            assert_eq!(report.leaders, 1, "shape {shape:?}");
            assert!(shape.contains(report.leader));
            assert_eq!(report.algorithm, "self-stab-max");
            assert!(report.rounds_consistent());
            assert_eq!(report.undecided, 0);
            assert_eq!(report.moves, 0, "self-stab-max never moves");
        }
    }

    #[test]
    fn leader_is_scheduler_independent() {
        // The elected leader is the maximum-position particle, a property of
        // the shape alone — every fair scheduler must agree on it.
        let shape = comb(5, 4);
        let rr = SelfStabMaxElection
            .elect(&shape, &mut RoundRobin, &RunOptions::default())
            .unwrap();
        let rev = SelfStabMaxElection
            .elect(&shape, &mut ReverseRoundRobin, &RunOptions::default())
            .unwrap();
        assert_eq!(rr.leader, rev.leader);
        for seed in 0..3 {
            let random = SelfStabMaxElection
                .elect(&shape, &mut SeededRandom::new(seed), &RunOptions::default())
                .unwrap();
            assert_eq!(random.leader, rr.leader);
            assert_eq!(random.leaders, 1);
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut rr = RoundRobin;
        assert!(matches!(
            SelfStabMaxElection.elect(&Shape::new(), &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
        let mut disconnected = hexagon(1);
        disconnected.insert(pm_grid::Point::new(40, 0));
        assert!(matches!(
            SelfStabMaxElection.elect(&disconnected, &mut rr, &RunOptions::default()),
            Err(ElectionError::InvalidInitialConfiguration(_))
        ));
    }

    #[test]
    fn single_particle_elects_itself_immediately() {
        let report = SelfStabMaxElection
            .elect(&line(1), &mut RoundRobin, &RunOptions::default())
            .unwrap();
        assert_eq!(report.leaders, 1);
        assert_eq!(report.total_rounds, 0, "already stable at the start");
    }

    #[test]
    fn recovers_from_corruption_without_reinitialize() {
        // Step to stability, scramble several memories through the control
        // surface (no reinitialize!), and keep stepping: the certificates
        // unravel the phantoms and a unique leader re-emerges.
        let shape = hexagon(3);
        let mut scheduler = SeededRandom::new(11);
        let mut execution = SelfStabMaxElection
            .start(&shape, &mut scheduler, &RunOptions::default())
            .unwrap();
        let mut corrupted_total = 0usize;
        let mut steps = 0u32;
        loop {
            steps += 1;
            assert!(steps < 10_000, "failed to finish");
            match execution.step_round().unwrap() {
                StepOutcome::RoundCompleted { rounds, .. }
                    if rounds == 4 && corrupted_total == 0 =>
                {
                    let mut control = execution.system().expect("round-driven phase");
                    for (i, p) in shape.iter().enumerate().take(9) {
                        if control.corrupt_at(p, 0xfau64.wrapping_mul(i as u64 + 3)) {
                            corrupted_total += 1;
                        }
                    }
                    assert!(corrupted_total > 0, "corruption must land");
                }
                StepOutcome::Finished(report) => {
                    assert_eq!(report.leaders, 1);
                    assert_eq!(report.undecided, 0);
                    assert!(shape.contains(report.leader));
                    break;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn corruption_hook_scrambles_and_reports_changes() {
        let algorithm = SsMaxAlgorithm { max_hops: 100 };
        let mut memory = SelfStabMemory::self_claim();
        let mut changed = 0;
        for entropy in 0..32u64 {
            if algorithm.corrupt(&mut memory, entropy) {
                changed += 1;
            }
        }
        assert!(changed > 16, "corruption should usually change the memory");
        // Deterministic: same entropy, same scramble.
        let mut a = SelfStabMemory::self_claim();
        let mut b = SelfStabMemory::self_claim();
        algorithm.corrupt(&mut a, 42);
        algorithm.corrupt(&mut b, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn certificate_rejects_forged_memories() {
        // A lone particle claiming a phantom position is invalid no matter
        // how the fields are set.
        let forged = LocalView {
            mem: SelfStabMemory {
                claim_q: 3,
                claim_r: 2,
                parent: Some(Direction::E),
                hops: 5,
            },
            neighbors: [None; 6],
        };
        assert!(!forged.cert_valid(100));
        let repaired = forged.repair(100).expect("must reset");
        assert!(repaired.is_self_claim());
        // A self-claim with junk parent/hops normalises too.
        let junk = LocalView {
            mem: SelfStabMemory {
                claim_q: 0,
                claim_r: 0,
                parent: Some(Direction::W),
                hops: 9,
            },
            neighbors: [None; 6],
        };
        assert_eq!(junk.repair(100), Some(SelfStabMemory::self_claim()));
    }
}
